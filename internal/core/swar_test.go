package core

import (
	"testing"

	"mpppb/internal/cache"
	"mpppb/internal/trace"
	"mpppb/internal/xrand"
)

// randomFeatureSet builds a valid feature set of the given size mixing all
// kinds, the way search explores them.
func randomFeatureSet(rng *xrand.RNG, n int) []Feature {
	feats := make([]Feature, n)
	for i := range feats {
		f := Feature{
			Kind: Kind(rng.Intn(7)),
			A:    1 + rng.Intn(MaxA),
			W:    rng.Intn(MaxW + 1),
			X:    rng.Bool(),
		}
		switch f.Kind {
		case KindOffset:
			f.B = rng.Intn(OffsetBits)
			f.E = f.B + rng.Intn(OffsetBits-f.B+2)
		case KindPC, KindAddress:
			f.B = rng.Intn(40)
			f.E = f.B + rng.Intn(24)
		}
		feats[i] = f
	}
	return feats
}

// scrambleState randomizes every predictor input source: weights across
// the full 6-bit range, history rings, ring heads, and per-set metadata.
func scrambleState(p *Predictor, rng *xrand.RNG) {
	for i := range p.weights {
		p.weights[i] = int8(WeightMin + rng.Intn(WeightMax-WeightMin+1))
	}
	for c := range p.hist {
		for i := range p.hist[c] {
			p.hist[c][i] = rng.Uint64()
		}
		p.heads[c] = uint32(rng.Intn(histRingLen))
	}
	for s := range p.setMeta {
		p.setMeta[s] = setMeta{lastBlock: rng.Uint64() >> 40, flags: uint8(rng.Intn(4))}
	}
}

// TestComputeIndicesMatchesScalarSum pins the SWAR hot path — the
// branch-light fastKernel walk, the biased-byte lane gather, and the
// sumLanes reduction — against the reference scalar summation, on random
// feature sets, random weight tables, and random accesses: same clamped
// confidence, same per-feature index vector.
func TestComputeIndicesMatchesScalarSum(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 25; trial++ {
		nf := 1 + rng.Intn(20)
		feats := randomFeatureSet(rng, nf)
		p := NewPredictor(feats, 64, 2)
		scrambleState(p, rng)

		scalarIdx := make([]uint16, nf)
		for i := 0; i < 300; i++ {
			a := cache.Access{
				PC:   rng.Uint64() >> uint(rng.Intn(40)),
				Addr: rng.Uint64() >> uint(rng.Intn(40)),
				Core: rng.Intn(2),
				Type: trace.Load,
			}
			set := rng.Intn(64)
			insert := rng.Bool()

			noIdxConf := p.predict(a, set, insert, false)
			gotConf := p.predict(a, set, insert, true)
			gotIdx := append([]uint16(nil), p.idx...)
			if noIdxConf != gotConf {
				t.Fatalf("trial %d access %d: needIdx=false confidence %d != needIdx=true %d",
					trial, i, noIdxConf, gotConf)
			}

			in := p.buildInput(a, set, insert)
			wantConf := p.computeIndicesScalar(in)
			copy(scalarIdx, p.idx)

			if gotConf != wantConf {
				t.Fatalf("trial %d access %d: SWAR confidence %d != scalar %d (features %v)",
					trial, i, gotConf, wantConf, feats)
			}
			for j := range scalarIdx {
				if gotIdx[j] != scalarIdx[j] {
					t.Fatalf("trial %d access %d: idx[%d] = %d, scalar %d (feature %s)",
						trial, i, j, gotIdx[j], scalarIdx[j], feats[j])
				}
			}
		}
	}
}

// TestComputeIndicesMatchesScalarOnPaperSets runs the same equivalence on
// the published feature sets at saturated weights, where a sign-handling
// bug in the biased-byte reduction would surface first.
func TestComputeIndicesMatchesScalarOnPaperSets(t *testing.T) {
	for name, set := range map[string][]Feature{
		"1a": SingleThreadSetA(),
		"1b": SingleThreadSetB(),
		"2":  MultiProgrammedSet(),
	} {
		for _, w := range []int8{WeightMin, WeightMax} {
			p := NewPredictor(set, 64, 1)
			for i := range p.weights {
				p.weights[i] = w
			}
			a := cache.Access{PC: 0x402468, Addr: 0xdeadbeef, Type: trace.Load}
			got := p.predict(a, 3, true, true)
			in := p.buildInput(a, 3, true)
			want := p.computeIndicesScalar(in)
			if got != want {
				t.Errorf("set %s, weights %d: SWAR %d != scalar %d", name, w, got, want)
			}
		}
	}
}

// TestSumLanesExhaustsBias sweeps sumLanes over the byte-value extremes:
// every lane at 0 (weight -128 biased... the minimum gatherable byte is
// WeightMin+128) and every lane at the maximum, across all word counts.
func TestSumLanesExhaustsBias(t *testing.T) {
	wMin, wMax := int8(WeightMin), int8(WeightMax)
	for words := 1; words <= laneWords; words++ {
		for _, b := range []uint8{0, uint8(wMin) ^ weightBias, uint8(wMax) ^ weightBias, 255} {
			var lanes [laneWords]uint64
			word := uint64(0)
			for i := 0; i < 8; i++ {
				word = word<<8 | uint64(b)
			}
			for w := 0; w < words; w++ {
				lanes[w] = word
			}
			if got, want := sumLanes(&lanes, words), words*8*int(b); got != want {
				t.Fatalf("sumLanes(%d words of %#x) = %d, want %d", words, b, got, want)
			}
		}
	}
}

// TestFastKernelFoldClassification pins the compile-time fold dispatch:
// a foldNone kernel must imply the raw value always fits its table.
func TestFastKernelFoldClassification(t *testing.T) {
	rng := xrand.New(13)
	feats := randomFeatureSet(rng, 200)
	ks, _ := compileFastKernels(feats)
	for i, k := range ks {
		switch k.fold {
		case foldNone:
			if k.xmask != 0 || k.wmask>>k.bits != 0 {
				t.Errorf("kernel %d (%s): classified foldNone but raw can exceed %d bits", i, feats[i], k.bits)
			}
		case fold88:
			if k.bits != 8 {
				t.Errorf("kernel %d (%s): classified fold88 with %d index bits", i, feats[i], k.bits)
			}
		}
	}
}
