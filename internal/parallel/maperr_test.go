package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts returns opts with a tiny backoff so retry tests run quickly.
func fastOpts(o RunOpts) RunOpts {
	if o.Backoff == 0 {
		o.Backoff = time.Millisecond
	}
	return o
}

func TestMapErrRetryTransientSucceeds(t *testing.T) {
	var calls atomic.Int64
	results, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Retries: 2}), 1,
		func(_ context.Context, i int) (int, error) {
			if calls.Add(1) < 3 {
				return 0, Transient(errors.New("flaky"))
			}
			return 42, nil
		})
	if err != nil || errs[0] != nil {
		t.Fatalf("err=%v errs=%v, want success after retries", err, errs)
	}
	if results[0] != 42 || calls.Load() != 3 {
		t.Fatalf("result %d after %d calls, want 42 after 3", results[0], calls.Load())
	}
}

func TestMapErrNonRetryableFailsImmediately(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("deterministic failure")
	_, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Retries: 5}), 1,
		func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			return 0, boom
		})
	if !errors.Is(err, boom) || !errors.Is(errs[0], boom) {
		t.Fatalf("err=%v errs=%v, want %v", err, errs, boom)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a non-retryable error, want 1", calls.Load())
	}
}

func TestMapErrRetriesAreBounded(t *testing.T) {
	var calls atomic.Int64
	_, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Retries: 3}), 1,
		func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			return 0, Transient(errors.New("always failing"))
		})
	if err == nil || errs[0] == nil {
		t.Fatal("want failure after exhausted retries")
	}
	if calls.Load() != 4 { // 1 initial + 3 retries
		t.Fatalf("%d calls, want 4 (1 + Retries)", calls.Load())
	}
}

func TestMapErrPanicNotRetried(t *testing.T) {
	var calls atomic.Int64
	_, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Retries: 5}), 1,
		func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			panic("boom")
		})
	var pe *PanicError
	if !errors.As(err, &pe) || !errors.As(errs[0], &pe) {
		t.Fatalf("err=%v, want *PanicError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a panic, want 1 (panics never retry)", calls.Load())
	}
}

func TestMapErrTimeoutRetried(t *testing.T) {
	var calls atomic.Int64
	results, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Retries: 1, Timeout: 20 * time.Millisecond}), 1,
		func(ctx context.Context, i int) (int, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // hang until the per-attempt deadline fires
				return 0, ctx.Err()
			}
			return 7, nil
		})
	if err != nil || errs[0] != nil {
		t.Fatalf("err=%v errs=%v, want timeout retried to success", err, errs)
	}
	if results[0] != 7 || calls.Load() != 2 {
		t.Fatalf("result %d after %d calls, want 7 after 2", results[0], calls.Load())
	}
}

func TestMapErrTimeoutExhaustedIsDeadlineExceeded(t *testing.T) {
	_, errs, err := MapErr(context.Background(),
		fastOpts(RunOpts{Workers: 1, Timeout: 10 * time.Millisecond}), 1,
		func(ctx context.Context, i int) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("err=%v errs=%v, want DeadlineExceeded", err, errs)
	}
}

func TestMapErrKeepGoingCollectsAllErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		results, errs, err := MapErr(context.Background(),
			RunOpts{Workers: workers, KeepGoing: true}, 8,
			func(_ context.Context, i int) (int, error) {
				if i%2 == 1 {
					return 0, fmt.Errorf("cell %d failed", i)
				}
				return i * 10, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: run-level err %v with KeepGoing, want nil", workers, err)
		}
		for i := 0; i < 8; i++ {
			if i%2 == 1 {
				if errs[i] == nil {
					t.Fatalf("workers=%d: cell %d error lost", workers, i)
				}
			} else if errs[i] != nil || results[i] != i*10 {
				t.Fatalf("workers=%d: cell %d = (%d, %v), want (%d, nil)", workers, i, results[i], errs[i], i*10)
			}
		}
	}
}

func TestMapErrKeepGoingPanicBecomesCellError(t *testing.T) {
	results, errs, err := MapErr(context.Background(),
		RunOpts{Workers: 4, KeepGoing: true}, 6,
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("cell 3 exploded")
			}
			return i, nil
		})
	if err != nil {
		t.Fatalf("run-level err %v, want nil (pool must survive the panic)", err)
	}
	var pe *PanicError
	if !errors.As(errs[3], &pe) {
		t.Fatalf("cell 3 error %v, want *PanicError", errs[3])
	}
	for i := 0; i < 6; i++ {
		if i != 3 && (errs[i] != nil || results[i] != i) {
			t.Fatalf("cell %d = (%d, %v), want (%d, nil)", i, results[i], errs[i], i)
		}
	}
}

func TestMapErrCancelReportsCtxError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MapErr(ctx, RunOpts{Workers: 1, KeepGoing: true}, 4,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want Canceled even with KeepGoing", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{Transient(errors.New("flaky")), true},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("flaky"))), true},
		{context.DeadlineExceeded, true},
		{context.Canceled, false},
		{&PanicError{Value: "boom"}, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestTransientUnwraps(t *testing.T) {
	base := errors.New("base")
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient must unwrap to the base error")
	}
}
