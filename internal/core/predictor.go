package core

import (
	"fmt"

	"mpppb/internal/cache"
)

// Weight range: "6 bit weights ranging from -32 to +31 provide a good
// trade-off between accuracy and area" (Section 3.4).
const (
	WeightMin = -32
	WeightMax = 31
)

// ConfMin/ConfMax clamp the summed confidence to the sampler's 9-bit signed
// confidence field (Section 3.3).
const (
	ConfMin = -256
	ConfMax = 255
)

// setMeta is the per-LLC-set predictor metadata: the most recently used
// block (burst feature) plus the lastmiss and have-block bits, packed into
// one flags byte. The three fields are always read together, so keeping
// them in one 16-byte record costs one cache line per prediction where
// three parallel slices cost three.
type setMeta struct {
	lastBlock uint64
	flags     uint8
}

// setMeta flag bits.
const (
	setLastMiss  uint8 = 1 << 0
	setHaveBlock uint8 = 1 << 1
)

// Predictor is the multiperspective reuse predictor: one weight table per
// feature, per-core PC history, and per-set metadata feeding the burst and
// lastmiss features.
//
// The hot path is compiled: NewPredictor resolves each feature into a
// kernel (kernel.go) and lays every weight table out in one contiguous
// array, so a prediction is a flat walk over precomputed operations with
// no per-access parameter derivation and no history copying.
type Predictor struct {
	features []Feature
	kernels  []kernel     // reference-shaped compiled form (scalar path, tests)
	fast     []fastKernel // branch-light form driving the SWAR hot path
	histOffs []uint32     // distinct history ring offsets backing srcs[srcHist+j]
	weights  []int8       // all weight tables, concatenated in feature order
	tables   [][]int8     // per-feature views into weights (introspection, state I/O)
	masks    []uint32     // index mask per table

	// hist[core] is a ring of recent memory-access PCs (not including the
	// access currently being predicted); heads[core] indexes the most
	// recent entry.
	hist  [][histRingLen]uint64
	heads []uint32

	// Per-LLC-set metadata, one record per set so a prediction touches a
	// single cache line of it (buildInput reads the lastmiss bit, the
	// have-block bit, and the last block address together on every call).
	setMeta []setMeta

	// scratch reused across calls: the assembled input, the per-feature
	// index vector, the SWAR weight-staging vector, and the requesting
	// core's ring resolved by buildInput.
	//
	// lanes holds the gathered (biased) weight bytes of the most recent
	// computeIndices call, eight per word. Like idx, it survives between
	// calls, which is what lets MPPPB's Victim→Fill memo reuse the whole
	// gathered state of a prediction — confidence, index vector, and lane
	// vector — without recomputing any of it on the Fill side.
	in      Input
	idx     []uint16
	lanes   [laneWords]uint64
	srcs    []uint64 // per-prediction source vector for the fast kernels
	curHist *[histRingLen]uint64
	curHead uint32
}

// NewPredictor builds predictor state for an LLC with the given number of
// sets, shared by the given number of cores.
func NewPredictor(features []Feature, llcSets, cores int) *Predictor {
	if len(features) == 0 {
		panic("core: empty feature set")
	}
	if cores <= 0 {
		panic("core: non-positive core count")
	}
	p := &Predictor{
		features:  features,
		kernels:   make([]kernel, len(features)),
		tables:    make([][]int8, len(features)),
		masks:     make([]uint32, len(features)),
		hist:    make([][histRingLen]uint64, cores),
		heads:   make([]uint32, cores),
		setMeta: make([]setMeta, llcSets),
		idx:     make([]uint16, len(features)),
	}
	total := 0
	for _, f := range features {
		if err := f.Validate(); err != nil {
			panic(err)
		}
		total += f.TableSize()
	}
	p.weights = make([]int8, total)
	base := 0
	for i, f := range features {
		sz := f.TableSize()
		p.tables[i] = p.weights[base : base+sz : base+sz]
		p.masks[i] = uint32(sz - 1)
		p.kernels[i] = compileKernel(f, uint32(base))
		base += sz
	}
	p.fast, p.histOffs = compileFastKernels(features)
	p.srcs = make([]uint64, srcHist+len(p.histOffs))
	p.curHist = &p.hist[0]
	return p
}

// Features returns the feature set (callers must not modify it).
func (p *Predictor) Features() []Feature { return p.features }

// TotalIndexBits returns the number of bits needed to store one feature-
// index vector in a sampler entry, for area accounting (Section 4.4).
func (p *Predictor) TotalIndexBits() int {
	n := 0
	for _, f := range p.features {
		n += f.IndexBits()
	}
	return n
}

// buildInput assembles the feature input for an access. insert marks
// misses; set is the LLC set index. The returned Input's History array is
// not filled — kernels read the requesting core's history ring, resolved
// here into p.curHist/p.curHead.
func (p *Predictor) buildInput(a cache.Access, set int, insert bool) *Input {
	in := &p.in
	in.PC = accessPC(a)
	in.Addr = a.Addr
	in.Insert = insert
	m := &p.setMeta[set]
	in.LastMiss = m.flags&setLastMiss != 0
	in.Burst = !insert && m.flags&setHaveBlock != 0 && m.lastBlock == a.Block()
	core := a.Core
	if core < 0 || core >= len(p.hist) {
		core = 0
	}
	p.curHist = &p.hist[core]
	p.curHead = p.heads[core]
	return in
}

// computeIndices fills p.idx with each feature's table index for the input
// and returns the summed, clamped confidence. The weights are gathered
// into p.lanes as biased bytes and reduced bit-parallel (see kernel.go);
// the biasing makes the reduction exactly the reference scalar sum, which
// TestComputeIndicesMatchesScalarSum pins on random table contents.
//
// The loop runs over the branch-light fastKernel form (kernel.go): the
// per-prediction source vector is filled once — PC, address, the three
// boolean raws, and each distinct history depth read from the ring one
// time — and every feature is then the same straight-line
// select/shift/mask/xor expression with no per-kind dispatch.
// TestKernelMatchesReferenceIndex and the scalar-equivalence tests pin
// both compiled forms to the reference Feature.Index.
func (p *Predictor) computeIndices(in *Input) int {
	nf := len(p.fast)
	if nf > laneWords*8 {
		return p.computeIndicesScalar(in)
	}
	hist, head := p.curHist, p.curHead

	// Per-prediction source vector. srcs[srcZero] stays 0.
	srcs := p.srcs
	pc := in.PC
	srcs[srcPC] = pc
	srcs[srcAddr] = in.Addr
	srcs[srcBurst] = b2u(in.Burst)
	srcs[srcInsert] = b2u(in.Insert)
	srcs[srcLastMiss] = b2u(in.LastMiss)
	for j, off := range p.histOffs {
		srcs[srcHist+j] = hist[(head+off)&histRingMask]
	}
	return p.gather(pc >> 2)
}

// predict is the fused hot-path prediction: it assembles the source vector
// straight from the access — no Input struct round-trip through memory, no
// separate buildInput call — and runs the gather. Confidence and the
// advisor's decision paths route through it; buildInput+computeIndices
// remain as the two-step form the scalar fallback and the tests exercise.
//
// needIdx selects whether the per-feature index vector is left in p.idx.
// Only sampler training reads it, and callers know before predicting
// whether the set is sampled, so the vast majority of predictions (every
// access to an unsampled set) skip the per-feature store entirely.
// Callers that predict with needIdx=false MUST NOT train from p.idx
// afterwards. The confidence is identical either way
// (TestComputeIndicesMatchesScalarSum checks both variants).
func (p *Predictor) predict(a cache.Access, set int, insert bool, needIdx bool) int {
	if len(p.fast) > laneWords*8 {
		return p.computeIndicesScalar(p.buildInput(a, set, insert))
	}
	core := a.Core
	if core < 0 || core >= len(p.hist) {
		core = 0
	}
	hist, head := &p.hist[core], p.heads[core]
	pc := accessPC(a)
	m := &p.setMeta[set]
	srcs := p.srcs
	srcs[srcPC] = pc
	srcs[srcAddr] = a.Addr
	srcs[srcBurst] = b2u(!insert && m.flags&setHaveBlock != 0 && m.lastBlock == a.Block())
	srcs[srcInsert] = b2u(insert)
	srcs[srcLastMiss] = b2u(m.flags&setLastMiss != 0)
	for j, off := range p.histOffs {
		srcs[srcHist+j] = hist[(head+off)&histRingMask]
	}
	if needIdx {
		return p.gather(pc >> 2)
	}
	return p.gatherConf(pc >> 2)
}

// gather runs the compiled index/weight walk over the already-filled source
// vector: per feature, the fastKernel select/shift/mask/fold, the idx store,
// and the biased weight byte ORed into its staging lane; then the SWAR
// reduction.
func (p *Predictor) gather(pcMix uint64) int {
	nf := len(p.fast)
	kernels := p.fast
	idx := p.idx
	weights := p.weights
	srcs := p.srcs

	words := (nf + 7) / 8
	i := 0
	for w := 0; w < words; w++ {
		// One lane word gathers up to eight features; the word accumulates
		// in a register and is stored once.
		var lane uint64
		end := i + 8
		if end > nf {
			end = nf
		}
		for sh := uint(0); i < end; i, sh = i+1, sh+8 {
			k := &kernels[i]
			raw := (srcs[k.src] >> k.shift) & k.wmask
			raw ^= pcMix & k.xmask
			var ix uint32
			switch k.fold {
			case foldNone:
				ix = uint32(raw)
			case fold88:
				ix = fold8(raw)
			default:
				if raw>>k.bits == 0 {
					ix = uint32(raw)
				} else {
					ix = foldTo(raw, int(k.bits))
				}
			}
			ix &= k.mask
			idx[i] = uint16(ix)
			lane |= uint64(uint8(weights[k.base+ix])^weightBias) << sh
		}
		p.lanes[w] = lane
	}
	return clampConf(sumLanes(&p.lanes, words) - weightBias*nf)
}

// gatherConf is gather without the idx store, for predictions on unsampled
// sets where no training will read the index vector. The loop body is
// otherwise identical — any change here must be mirrored in gather (the
// scalar-equivalence tests cover both).
func (p *Predictor) gatherConf(pcMix uint64) int {
	nf := len(p.fast)
	kernels := p.fast
	weights := p.weights
	srcs := p.srcs

	words := (nf + 7) / 8
	i := 0
	for w := 0; w < words; w++ {
		var lane uint64
		end := i + 8
		if end > nf {
			end = nf
		}
		for sh := uint(0); i < end; i, sh = i+1, sh+8 {
			k := &kernels[i]
			raw := (srcs[k.src] >> k.shift) & k.wmask
			raw ^= pcMix & k.xmask
			var ix uint32
			switch k.fold {
			case foldNone:
				ix = uint32(raw)
			case fold88:
				ix = fold8(raw)
			default:
				if raw>>k.bits == 0 {
					ix = uint32(raw)
				} else {
					ix = foldTo(raw, int(k.bits))
				}
			}
			ix &= k.mask
			lane |= uint64(uint8(weights[k.base+ix])^weightBias) << sh
		}
		p.lanes[w] = lane
	}
	return clampConf(sumLanes(&p.lanes, words) - weightBias*nf)
}

// b2u converts a bool to its 0/1 raw feature value.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// computeIndicesScalar is the reference summation: the loop-carried scalar
// add over per-feature weights. It remains the fallback for feature sets
// too large for the staging vector and the oracle the SWAR path is tested
// against.
func (p *Predictor) computeIndicesScalar(in *Input) int {
	sum := 0
	hist, head := p.curHist, p.curHead
	for i := range p.kernels {
		k := &p.kernels[i]
		ix := k.index(in, hist, head) & k.mask
		p.idx[i] = uint16(ix)
		sum += int(p.weights[k.base+ix])
	}
	return clampConf(sum)
}

// historyPC returns the w-th most recent observed PC (w >= 1) for a core,
// as a pc feature with W=w reads it.
func (p *Predictor) historyPC(core, w int) uint64 {
	return p.hist[core][(p.heads[core]+uint32(w)-1)&histRingMask]
}

// Confidence computes the prediction for an access without updating any
// state. Higher values mean the block is more confidently predicted dead.
func (p *Predictor) Confidence(a cache.Access, set int, insert bool) int {
	return p.predict(a, set, insert, true)
}

// observe updates per-set and per-core state after an access has been
// predicted and (if sampled) trained. resident reports whether the block
// is in the cache after the access (false for bypasses).
func (p *Predictor) observe(a cache.Access, set int, miss, resident bool) {
	m := &p.setMeta[set]
	if miss {
		m.flags |= setLastMiss
	} else {
		m.flags &^= setLastMiss
	}
	if resident {
		m.lastBlock = a.Block()
		m.flags |= setHaveBlock
	}
	core := a.Core
	if core < 0 || core >= len(p.hist) {
		core = 0
	}
	head := (p.heads[core] + histRingLen - 1) & histRingMask
	p.hist[core][head] = accessPC(a)
	p.heads[core] = head
}

// bump adjusts one weight with saturating 6-bit arithmetic.
func (p *Predictor) bump(feature int, index uint16, up bool) {
	w := &p.tables[feature][index]
	if up {
		if *w < WeightMax {
			*w++
		}
	} else if *w > WeightMin {
		*w--
	}
}

func clampConf(v int) int {
	if v < ConfMin {
		return ConfMin
	}
	if v > ConfMax {
		return ConfMax
	}
	return v
}

// ForEachWeight visits every weight, in feature order then index order.
// The verification layer uses it to compare the production tables against
// a lockstep reference and to check saturation bounds.
func (p *Predictor) ForEachWeight(fn func(feature, index int, w int8)) {
	for i, t := range p.tables {
		for ix, w := range t {
			fn(i, ix, w)
		}
	}
}

// checkWeights verifies every weight is within the 6-bit saturation range.
func (p *Predictor) checkWeights() error {
	for i, t := range p.tables {
		for ix, w := range t {
			if w < WeightMin || w > WeightMax {
				return fmt.Errorf("core: weight table %d index %d holds %d outside [%d,%d]",
					i, ix, w, WeightMin, WeightMax)
			}
		}
	}
	return nil
}

// String summarizes the predictor configuration.
func (p *Predictor) String() string {
	return fmt.Sprintf("multiperspective(%d features, %d index bits)", len(p.features), p.TotalIndexBits())
}

// SizeBits estimates the predictor's storage in bits, mirroring the area
// accounting of Section 4.4: the weight tables plus per-set lastmiss bits.
// Sampler storage is accounted by the sampler.
func (p *Predictor) SizeBits() int {
	bits := 0
	for _, t := range p.tables {
		bits += len(t) * 6
	}
	bits += len(p.setMeta) // one lastmiss bit per set
	return bits
}
