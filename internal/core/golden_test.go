package core

import (
	"testing"

	"mpppb/internal/cache"
	"mpppb/internal/trace"
)

// TestFeatureIndexGolden pins the exact index computation for a fixed
// input across every feature kind and parameter shape. If this test fails
// after an intentional semantic change, predictor state is no longer
// comparable across versions: re-record the values and say so in the
// commit.
func TestFeatureIndexGolden(t *testing.T) {
	in := &Input{
		PC:       0x402468,
		Addr:     0xdeadbeef,
		Insert:   true,
		Burst:    false,
		LastMiss: true,
	}
	for i := range in.History {
		in.History[i] = 0x400000 + uint64(i)*0x1234
	}
	in.History[0] = in.PC

	cases := []struct {
		spec string
		want uint32
	}{
		{"pc(10,1,53,10,0)", 0x7f}, // recorded golden values
		{"pc(17,6,20,0,1)", 0x92},
		{"pc(16,3,11,16,1)", 0x6b},
		{"address(11,8,19,0)", 0xb3},
		{"address(9,9,14,1)", 0x1c},
		{"offset(15,1,6,1)", 0x2d},
		{"offset(15,3,7,0)", 0x5},
		{"offset(13,0,4,0)", 0xf},
		{"bias(16,0)", 0x0},
		{"bias(6,1)", 0x3},
		{"burst(6,0)", 0x0},
		{"insert(16,0)", 0x1},
		{"insert(16,1)", 0x2},
		{"lastmiss(9,0)", 0x1},
	}
	for _, c := range cases {
		f, err := ParseFeature(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Index(in); got != c.want {
			t.Errorf("%s: index %#x, want %#x", c.spec, got, c.want)
		}
	}
}

// TestPredictionGoldenEndToEnd pins an end-to-end prediction after a fixed
// training sequence, guarding the whole predict/train pipeline.
func TestPredictionGoldenEndToEnd(t *testing.T) {
	m := NewMPPPB(64, 16, SingleThreadParams())
	c := cache.New("llc", 64, 16, m)
	for i := 0; i < 10000; i++ {
		c.Access(cache.Access{PC: 0x400 + uint64(i%3)*4, Addr: uint64(i%1000) << trace.BlockBits, Type: trace.Load})
		c.Access(cache.Access{PC: 0x900, Addr: uint64(50000+i) << trace.BlockBits, Type: trace.Load})
	}
	probe := cache.Access{PC: 0x900, Addr: 77777 << trace.BlockBits, Type: trace.Load}
	conf := m.Predict(probe, c.SetIndex(probe.Block()), true)
	// The streaming PC must predict clearly dead; the exact value is
	// pinned to catch accidental pipeline changes.
	if conf <= 0 {
		t.Fatalf("streaming PC confidence %d, want positive", conf)
	}
	const golden = 255
	if conf != golden {
		t.Errorf("end-to-end confidence %d, want golden %d (re-record on intentional change)", conf, golden)
	}
}
