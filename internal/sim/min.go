package sim

import (
	"mpppb/internal/belady"
	"mpppb/internal/cache"
	"mpppb/internal/policy"
	"mpppb/internal/trace"
)

// RunSingleMIN runs Bélády's MIN with optimal bypass on a segment. It is a
// two-pass simulation: pass one records the LLC reference stream under LRU
// (which also yields the LRU result for free), pass two replays the
// workload with the optimal policy. See package belady for why the stream
// is identical across passes.
func RunSingleMIN(cfg Config, gen trace.Generator) (lru, min Result) {
	var rec *belady.Recorder
	lru = RunSingle(cfg, gen, func(sets, ways int) cache.ReplacementPolicy {
		rec = belady.NewRecorder(policy.NewLRU(sets, ways))
		return rec
	})
	min = RunSingle(cfg, gen, func(sets, ways int) cache.ReplacementPolicy {
		return belady.NewMIN(sets, ways, rec.Stream())
	})
	min.Segment = gen.Name()
	return lru, min
}
