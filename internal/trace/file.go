package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format, for capturing synthetic workloads or feeding
// externally collected program traces to the simulator.
//
// Layout: an 8-byte magic, then one varint-encoded record per memory
// instruction. PCs and addresses are delta-encoded against the previous
// record (zigzag varints), which compresses loop-heavy traces well; the
// flags byte carries the store bit and small non-memory counts, with an
// escape to a full varint for large ones.
const fileMagic = "MPPPBT1\n"

// flag encoding: bit 0 = store; bits 1..6 = NonMem when < nonMemEscape;
// NonMem == nonMemEscape means "read a varint".
const nonMemEscape = 63

// Writer streams records to a binary trace file.
type Writer struct {
	w       *bufio.Writer
	lastPC  uint64
	lastA   uint64
	count   uint64
	started bool
	buf     [3 * binary.MaxVarintLen64]byte
}

// NewWriter begins a trace on w by writing the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag decodes.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Add appends one record.
func (t *Writer) Add(r Record) error {
	flags := uint64(0)
	if r.IsWrite {
		flags = 1
	}
	nm := uint64(r.NonMem)
	if nm < nonMemEscape {
		flags |= nm << 1
	} else {
		flags |= nonMemEscape << 1
	}
	n := binary.PutUvarint(t.buf[:], flags)
	n += binary.PutUvarint(t.buf[n:], zigzag(int64(r.PC)-int64(t.lastPC)))
	n += binary.PutUvarint(t.buf[n:], zigzag(int64(r.Addr)-int64(t.lastA)))
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	if nm >= nonMemEscape {
		var vb [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(vb[:], nm)
		if _, err := t.w.Write(vb[:k]); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	t.lastPC, t.lastA = r.PC, r.Addr
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the trace. The underlying writer is not closed.
func (t *Writer) Flush() error { return t.w.Flush() }

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// ReadAll decodes an entire trace into memory in row-major form. For a
// column-major decode without the intermediate []Record, see
// ReadAllColumns; both run the same decoder (decodeTrace).
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	err := decodeTrace(r, func(pc, addr uint64, isWrite bool, nonMem uint16) {
		out = append(out, Record{PC: pc, Addr: addr, IsWrite: isWrite, NonMem: nonMem})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Capture materializes n records from a generator.
func Capture(g Generator, n int) []Record {
	out := make([]Record, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

// ReplayGenerator adapts a record slice to the Generator interface,
// wrapping around at the end (generators are infinite by contract; drivers
// bound runs by instruction count). The wrap restarts program phase
// behaviour, which is the same convention the multi-programmed methodology
// uses for region restarts.
type ReplayGenerator struct {
	name string
	recs []Record
	pos  int
	// Wraps counts how many times the replay restarted.
	Wraps uint64
}

// NewReplayGenerator wraps records in a Generator. It panics on an empty
// slice (an empty trace cannot satisfy the infinite-stream contract).
func NewReplayGenerator(name string, recs []Record) *ReplayGenerator {
	if len(recs) == 0 {
		panic("trace: empty replay trace")
	}
	return &ReplayGenerator{name: name, recs: recs}
}

// Name implements Generator.
func (g *ReplayGenerator) Name() string { return g.name }

// Next implements Generator.
func (g *ReplayGenerator) Next(rec *Record) {
	*rec = g.recs[g.pos]
	g.pos++
	if g.pos == len(g.recs) {
		g.pos = 0
		g.Wraps++
	}
}

// NextBatch implements BatchGenerator: one bulk copy up to the wrap point.
func (g *ReplayGenerator) NextBatch(recs []Record) int {
	if len(recs) == 0 {
		return 0
	}
	n := copy(recs, g.recs[g.pos:])
	g.pos += n
	if g.pos == len(g.recs) {
		g.pos = 0
		g.Wraps++
	}
	return n
}

// Reset implements Generator.
func (g *ReplayGenerator) Reset() { g.pos = 0; g.Wraps = 0 }

// Len returns the number of records in one pass of the trace.
func (g *ReplayGenerator) Len() int { return len(g.recs) }

var _ BatchGenerator = (*ReplayGenerator)(nil)
