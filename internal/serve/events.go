package serve

import (
	"mpppb/internal/cache"
	"mpppb/internal/core"
	"mpppb/internal/trace"
)

// Event is one access a client asks advice for. The client owns the cache
// array, so it reports the lookup outcome: Hit selects the hit-side
// decision; on a miss MayBypass reports whether the fill can be declined —
// false when the set has an invalid frame, mirroring cache.Cache, which
// only consults the bypass point when the set is full.
type Event struct {
	// PC is the address of the memory instruction responsible.
	PC uint64
	// Addr is the byte address referenced.
	Addr uint64
	// Type is the access type (load, store, prefetch, writeback).
	Type trace.AccessType
	// Core identifies the requesting core (0-based).
	Core int
	// Hit reports whether the client's lookup hit.
	Hit bool
	// MayBypass reports, on a miss, whether the client can decline the
	// fill. Must be false on hits.
	MayBypass bool
}

// Apply drives one event through an advisor and returns its advice. It is
// the single authoritative Event→Advisor mapping: the server's shard
// workers and the inline replay used by the equivalence tests both run
// exactly this.
func Apply(adv *core.Advisor, ev Event) core.Advice {
	a := cache.Access{PC: ev.PC, Addr: ev.Addr, Type: ev.Type, Core: ev.Core}
	if ev.Hit {
		return adv.AdviseHit(a, adv.SetFor(a.Block()))
	}
	return adv.AdviseMiss(a, adv.SetFor(a.Block()), ev.MayBypass)
}

// Annotate runs n records from gen through an LLC under the inline MPPPB
// policy and returns the annotated event stream: hits become hit events,
// misses carry MayBypass exactly when the cache consulted the bypass
// point. Replaying the stream through a fresh Advisor (or a server)
// reproduces the inline policy's decisions and state evolution exactly;
// it is the canonical event source for the equivalence tests, the smoke
// script, and the client benchmark.
func Annotate(gen trace.Generator, n, sets, ways int, params core.Params) []Event {
	m := core.NewMPPPB(sets, ways, params)
	llc := cache.New("llc", sets, ways, m)
	events := make([]Event, 0, n)
	var rec trace.Record
	for i := 0; i < n; i++ {
		gen.Next(&rec)
		a := cache.Access{PC: rec.PC, Addr: rec.Addr, Type: trace.Load}
		if rec.IsWrite {
			a.Type = trace.Store
		}
		r := llc.Access(a)
		ev := Event{PC: a.PC, Addr: a.Addr, Type: a.Type, Hit: r.Hit}
		if !r.Hit {
			ev.MayBypass = r.Bypassed || r.EvictedValid
		}
		events = append(events, ev)
	}
	return events
}
