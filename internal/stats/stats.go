// Package stats provides the metrics used throughout the evaluation:
// misses per kilo-instruction, IPC-derived speedups, weighted speedup for
// multi-programmed workloads (Section 4.5), geometric means, and receiver
// operating characteristic (ROC) curves for predictor accuracy (Section
// 6.3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// MPKI computes misses per 1000 instructions. A zero-instruction window is
// a panic, not a silent 0: it means the measurement loop never ran (a dry
// generator, a degenerate segment) and reporting "no misses" for it would
// corrupt aggregates undetectably. Under the experiment engine the panic
// surfaces as a captured per-cell failure, the same way the batch readers'
// dry-generator panic does.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		panic(fmt.Sprintf("stats: MPKI over a zero-instruction window (%d misses); the measurement loop never ran", misses))
	}
	return 1000 * float64(misses) / float64(instructions)
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns 0 for an empty slice. A non-positive value is a panic — the
// strict mode for fail-fast runs; drivers that degrade gracefully
// (experiments.Run.KeepGoing) aggregate with GeoMeanLenient instead. NaN
// entries (failed cells) flow through and yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeoMeanLenient is GeoMean for graceful-degradation paths: instead of
// panicking, non-positive entries poison the result to NaN (matching how a
// failed cell's NaN renders in the TSVs) and are counted in bad, so the
// caller can log how many degenerate values — an IPC of 0 from a
// zero-instruction segment, say — the aggregate absorbed. NaN entries also
// yield NaN but are not counted as bad: they are explicit failure markers,
// not silently-degenerate data.
func GeoMeanLenient(xs []float64) (gm float64, bad int) {
	for _, x := range xs {
		if x <= 0 { // NaN compares false, so this counts only real non-positives
			bad++
		}
	}
	if bad > 0 {
		return math.NaN(), bad
	}
	return GeoMean(xs), 0
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i); weights need not be
// normalized. Used for combining a benchmark's segment results with
// simpoint-style weights.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sx, sw float64
	for i := range xs {
		sx += xs[i] * ws[i]
		sw += ws[i]
	}
	if sw == 0 {
		return 0
	}
	return sx / sw
}

// Sorted returns a sorted copy of xs (ascending), for S-curve plots.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// SortedDesc returns a sorted copy of xs (descending).
func SortedDesc(xs []float64) []float64 {
	out := Sorted(xs)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// WeightedSpeedup computes the paper's multi-programmed metric: for each
// thread i, IPC_i under the evaluated policy divided by SingleIPC_i (the
// thread alone with the full LLC under LRU), summed over threads. The
// reported number is this weighted IPC normalized by the same quantity
// under LRU.
func WeightedSpeedup(ipc, singleIPC []float64) float64 {
	if len(ipc) != len(singleIPC) {
		panic("stats: WeightedSpeedup length mismatch")
	}
	sum := 0.0
	for i := range ipc {
		if singleIPC[i] <= 0 {
			panic("stats: non-positive single-thread IPC")
		}
		sum += ipc[i] / singleIPC[i]
	}
	return sum
}

// ROCSample is one prediction outcome: the predictor's confidence that the
// block is dead, and the ground truth (whether the block really was dead,
// i.e. evicted without reuse).
type ROCSample struct {
	Confidence int
	Dead       bool
}

// ROCPoint is one point of an ROC curve at a given confidence threshold:
// blocks with Confidence >= Threshold are classified dead.
type ROCPoint struct {
	Threshold int
	// TPR is the true positive rate: dead blocks predicted dead.
	TPR float64
	// FPR is the false positive rate: live blocks predicted dead.
	FPR float64
}

// ROC computes the ROC curve over all distinct thresholds present in the
// samples, ordered by increasing FPR (decreasing threshold). Section 6.3:
// "The false positive rate is the fraction of live blocks that are
// mispredicted as dead, while the true positive rate is the fraction of
// dead blocks that are correctly predicted."
func ROC(samples []ROCSample) []ROCPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := make([]ROCSample, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })

	var totalDead, totalLive int
	for _, s := range samples {
		if s.Dead {
			totalDead++
		} else {
			totalLive++
		}
	}

	var points []ROCPoint
	var tp, fp int
	i := 0
	for i < len(sorted) {
		thr := sorted[i].Confidence
		for i < len(sorted) && sorted[i].Confidence == thr {
			if sorted[i].Dead {
				tp++
			} else {
				fp++
			}
			i++
		}
		pt := ROCPoint{Threshold: thr}
		if totalDead > 0 {
			pt.TPR = float64(tp) / float64(totalDead)
		}
		if totalLive > 0 {
			pt.FPR = float64(fp) / float64(totalLive)
		}
		points = append(points, pt)
	}
	return points
}

// AUC returns the area under an ROC curve computed by ROC (trapezoidal,
// anchored at (0,0) and (1,1)).
func AUC(points []ROCPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	area := 0.0
	px, py := 0.0, 0.0
	for _, p := range points {
		area += (p.FPR - px) * (p.TPR + py) / 2
		px, py = p.FPR, p.TPR
	}
	area += (1 - px) * (1 + py) / 2
	return area
}

// TPRAtFPR linearly interpolates the curve's true positive rate at a target
// false positive rate, for comparisons like the paper's "FPR 25-31% band".
// A target beyond the curve's last point interpolates toward the (1,1)
// anchor — the same anchor AUC integrates to — rather than returning the
// last point's raw TPR, so the two views of one curve agree.
func TPRAtFPR(points []ROCPoint, fpr float64) float64 {
	if len(points) == 0 {
		return 0
	}
	px, py := 0.0, 0.0
	for _, p := range points {
		if p.FPR >= fpr {
			if p.FPR == px {
				return p.TPR
			}
			frac := (fpr - px) / (p.FPR - px)
			return py + frac*(p.TPR-py)
		}
		px, py = p.FPR, p.TPR
	}
	// fpr lies past the last measured point: interpolate the tail segment
	// from (px,py) to the implicit (1,1) endpoint.
	if fpr >= 1 || px >= 1 {
		return 1
	}
	frac := (fpr - px) / (1 - px)
	return py + frac*(1-py)
}
