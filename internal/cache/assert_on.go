//go:build verify

package cache

// verifyAsserts enables inline structural assertions in the access hot
// path. It is a compile-time constant so the unverified build carries no
// branch at all: the assertion calls are dead-code eliminated.
const verifyAsserts = true
