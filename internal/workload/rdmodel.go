package workload

import (
	"strings"

	"mpppb/internal/obs"
	"mpppb/internal/trace"
	"mpppb/internal/xrand"
)

// Reuse-distance-model-driven generator family: a benchmark is a target
// LRU stack-distance histogram, and the generator synthesizes an address
// stream whose measured histogram matches it. Reuse-distance histograms
// are a compact parameterization of locality (arXiv 1907.05068), and
// cloud/software-cache patterns — short session reuse, mid-range working
// sets, one-hit-wonder cold tails — are naturally expressed as histograms
// even when no SPEC-like kernel reproduces them (arXiv 2007.15859).
//
// Synthesis draws each access's intended stack distance from the target
// distribution and re-references the block at exactly that LRU depth via
// the rstack order-statistic structure, so the achieved histogram tracks
// the target as soon as the stack has grown deep enough to serve the
// deepest bucket. The measured-vs-target L1 fit is exported through the
// obs manifest as mpppb_workload_rd_fit_l1_<segment>.

// RDBucket is one bucket of a reuse-distance histogram: Weight's worth of
// accesses reuse blocks at stack distances in (previous Hi, Hi]. Distance
// 1 is an immediate re-reference of the most recently used block.
type RDBucket struct {
	Hi     uint64
	Weight float64
}

// RDModel is a target reuse-distance histogram plus the cold (compulsory,
// never-before-referenced) access weight. Weights need not be normalized.
type RDModel struct {
	// Buckets in ascending Hi order.
	Buckets []RDBucket
	// Cold is the weight of first-ever references (infinite distance).
	Cold float64
	// WritePeriod makes every n-th access a store; 0 disables writes.
	WritePeriod int
	// FitBound is the declared L1 fit tolerance: the statistical tests
	// require the measured steady-state histogram within this L1 distance
	// of the target (L1 over the normalized bucket+cold vector, range
	// [0,2]).
	FitBound float64
}

func (m RDModel) validate() {
	if len(m.Buckets) == 0 {
		panic("workload: RDModel with no buckets")
	}
	var prev uint64
	total := m.Cold
	for _, b := range m.Buckets {
		if b.Hi <= prev {
			panic("workload: RDModel bucket bounds not ascending from 1")
		}
		if b.Weight < 0 || m.Cold < 0 {
			panic("workload: RDModel with negative weight")
		}
		prev = b.Hi
		total += b.Weight
	}
	if total <= 0 {
		panic("workload: RDModel with zero total weight")
	}
}

// Bounds returns the bucket upper edges, for measuring a stream against
// the model with stats.ReuseHistogram.
func (m RDModel) Bounds() []uint64 {
	out := make([]uint64, len(m.Buckets))
	for i, b := range m.Buckets {
		out[i] = b.Hi
	}
	return out
}

// Targets returns the normalized target vector: one entry per bucket,
// then the cold fraction.
func (m RDModel) Targets() []float64 {
	out := make([]float64, len(m.Buckets)+1)
	total := m.Cold
	for _, b := range m.Buckets {
		total += b.Weight
	}
	for i, b := range m.Buckets {
		out[i] = b.Weight / total
	}
	out[len(m.Buckets)] = m.Cold / total
	return out
}

// MaxDistance returns the deepest bucket edge: the recency stack's
// capacity and the depth the stream must fill before steady state.
func (m RDModel) MaxDistance() uint64 { return m.Buckets[len(m.Buckets)-1].Hi }

// L1Fit computes the L1 distance between a measured (counts, cold)
// histogram — as returned by stats.ReuseHistogram over the model's
// Bounds() — and the model's target, over normalized vectors. Overflow
// counts (distances past the deepest bucket, impossible in a synthesized
// stream but possible in a measured one) are included against a target of
// zero.
func (m RDModel) L1Fit(counts []uint64, cold uint64) float64 {
	var total uint64 = cold
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 2 // no data: maximally bad
	}
	target := m.Targets()
	fit := 0.0
	for i, c := range counts {
		measured := float64(c) / float64(total)
		want := 0.0
		if i < len(m.Buckets) {
			want = target[i]
		}
		fit += abs(measured - want)
	}
	fit += abs(float64(cold)/float64(total) - target[len(m.Buckets)])
	return fit
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RDGen synthesizes a stream matching an RDModel. It satisfies
// trace.BatchGenerator through the embedded Gen chassis.
type RDGen struct {
	*Gen
	model RDModel
	cdf   []float64 // per-bucket cumulative probability; cold is the remainder
	seed  uint64
	base  uint64
	rng   *xrand.RNG
	stack *rstack

	nextBlock uint64
	measured  []uint64 // achieved distances per bucket
	cold      uint64
	emitted   uint64
	fitGauge  *obs.FloatGauge
}

// fitEvery is how often (in accesses) the fit gauge refreshes.
const fitEvery = 4096

// NewRD builds a reuse-distance-model generator at a seed and address
// base.
func NewRD(name string, seed, base uint64, model RDModel) *RDGen {
	model.validate()
	target := model.Targets()
	cdf := make([]float64, len(model.Buckets))
	sum := 0.0
	for i := range model.Buckets {
		sum += target[i]
		cdf[i] = sum
	}
	g := newGen(name, 2)
	r := &RDGen{
		Gen:      g,
		model:    model,
		cdf:      cdf,
		seed:     seed,
		base:     base,
		rng:      xrand.New(seed),
		stack:    newRStack(seed+1, int(model.MaxDistance())+1),
		measured: make([]uint64, len(model.Buckets)),
	}
	g.step = r.step
	g.reset = r.resetState
	return r
}

// step emits one access at a stack distance drawn from the target
// histogram.
func (r *RDGen) step() {
	u := r.rng.Float64()
	// Bucket choice: binary search the cdf; u past the last entry is a
	// cold access.
	lo, hi := 0, len(r.cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bucket := lo
	var block uint64
	if bucket == len(r.cdf) || r.stack.Len() == 0 {
		// Cold: a fresh, never-referenced block.
		block = r.nextBlock
		r.nextBlock++
		r.cold++
		bucket = len(r.cdf)
	} else {
		// Reuse at a distance uniform within the bucket, clamped to the
		// stack's current depth (only reachable before the stack fills).
		blo := uint64(0)
		if bucket > 0 {
			blo = r.model.Buckets[bucket-1].Hi
		}
		bhi := r.model.Buckets[bucket].Hi
		d := blo + 1 + r.rng.Uint64n(bhi-blo)
		if n := uint64(r.stack.Len()); d > n {
			d = n
		}
		block = r.stack.TakeAt(int(d - 1))
		// Account the achieved distance, which the clamp may have moved
		// to a shallower bucket.
		a := 0
		for a < len(r.model.Buckets)-1 && r.model.Buckets[a].Hi < d {
			a++
		}
		r.measured[a]++
	}
	r.stack.PushFront(block)
	if uint64(r.stack.Len()) > r.model.MaxDistance() {
		r.stack.DropLast()
	}
	// Stable PC per reuse class: the predictor's PC features see "cold
	// scan" vs "hot reuse" call sites, like real software caches.
	pc := pcBase(r.base, 0) + uint64(bucket)*8
	write := r.model.WritePeriod > 0 && r.emitted%uint64(r.model.WritePeriod) == 0
	r.emit(pc, r.base+block*trace.BlockSize+(block%8)*8, write)
	r.emitted++
	if r.emitted%fitEvery == 0 && r.fitGauge != nil {
		r.fitGauge.Set(r.Fit())
	}
}

func (r *RDGen) resetState() {
	r.rng.Seed(r.seed)
	r.stack.Reset()
	r.nextBlock = 0
	for i := range r.measured {
		r.measured[i] = 0
	}
	r.cold = 0
	r.emitted = 0
}

// Model returns the generator's target model.
func (r *RDGen) Model() RDModel { return r.model }

// Fit returns the online measured-vs-target L1 fit over everything
// emitted since the last Reset. It converges toward 0 as the run leaves
// the cold-start region (the stack must fill to MaxDistance before deep
// buckets are reachable); the property tests measure steady state with an
// explicit warmup instead.
func (r *RDGen) Fit() float64 { return r.model.L1Fit(r.measured, r.cold) }

var _ trace.BatchGenerator = (*RDGen)(nil)

// fitMetricName derives the obs gauge name for a segment's fit metric,
// mapping the segment separator to the metric-name alphabet.
func fitMetricName(segment string) string {
	return "mpppb_workload_rd_fit_l1_" + strings.ReplaceAll(segment, "-", "_")
}

// rdFamily wraps a preset model as a registered extension benchmark. The
// per-segment phase multiplier scales bucket depths (the working-set
// analogue of the core suite's footprint scaling).
func rdFamily(name, class string, model RDModel) FamilyBenchmark {
	return FamilyBenchmark{Name: name, Class: class, Make: func(seg int, base uint64) trace.Generator {
		scaled := model
		scaled.Buckets = make([]RDBucket, len(model.Buckets))
		prev := uint64(0)
		for i, b := range model.Buckets {
			hi := scale(seg, b.Hi)
			if hi <= prev { // keep edges strictly ascending after scaling
				hi = prev + 1
			}
			scaled.Buckets[i] = RDBucket{Hi: hi, Weight: b.Weight}
			prev = hi
		}
		g := NewRD(segName(name, seg), seedFor(name, seg), base, scaled)
		g.fitGauge = obs.Default().FloatGauge(fitMetricName(g.Name()),
			"measured-vs-target reuse-distance L1 fit of "+g.Name())
		g.Reset()
		return g
	}}
}

// The rd presets: server, KV and CDN locality profiles. Depths are in
// blocks (64B); the deepest edges sit at a few hundred KB to a few MB of
// distinct blocks, around the 2MB LLC. FitBound is the declared tolerance
// the statistical tests enforce per preset.
func init() {
	// rd_server: application-server heap — strong short-range reuse
	// (request-local state), a mid-range session working set, and a
	// modest cold stream of new requests.
	registerFamily(rdFamily("rd_server", "rd-model server", RDModel{
		Buckets: []RDBucket{
			{Hi: 16, Weight: 0.30},
			{Hi: 256, Weight: 0.25},
			{Hi: 1024, Weight: 0.18},
			{Hi: 4096, Weight: 0.15},
		},
		Cold:        0.12,
		WritePeriod: 7,
		FitBound:    0.08,
	}))
	// rd_kv: key-value store — zipf-ish hot keys (very short distances)
	// plus a heavy mid/deep tail of warm keys.
	registerFamily(rdFamily("rd_kv", "rd-model kv-store", RDModel{
		Buckets: []RDBucket{
			{Hi: 8, Weight: 0.35},
			{Hi: 128, Weight: 0.20},
			{Hi: 2048, Weight: 0.20},
			{Hi: 8192, Weight: 0.17},
		},
		Cold:        0.08,
		WritePeriod: 5,
		FitBound:    0.08,
	}))
	// rd_cdn: edge cache — a large one-hit-wonder cold fraction (the
	// classic CDN pattern and the bypass opportunity), shallow reuse for
	// hot objects.
	registerFamily(rdFamily("rd_cdn", "rd-model cdn", RDModel{
		Buckets: []RDBucket{
			{Hi: 32, Weight: 0.30},
			{Hi: 512, Weight: 0.20},
			{Hi: 4096, Weight: 0.15},
		},
		Cold:        0.35,
		WritePeriod: 0,
		FitBound:    0.08,
	}))
}
