package trace

import "testing"

// countingGen is a per-record-only Generator, exercising FillBatch's
// fallback path.
type countingGen struct{ n uint64 }

func (g *countingGen) Name() string { return "counting" }
func (g *countingGen) Next(rec *Record) {
	g.n++
	*rec = Record{PC: g.n * 4, Addr: g.n * 64, NonMem: uint16(g.n % 5)}
}
func (g *countingGen) Reset() { g.n = 0 }

func TestFillBatchFallback(t *testing.T) {
	g := &countingGen{}
	recs := make([]Record, 7)
	if n := FillBatch(g, recs); n != 7 {
		t.Fatalf("FillBatch = %d, want 7", n)
	}
	for i, r := range recs {
		if r.PC != uint64(i+1)*4 {
			t.Fatalf("record %d: PC %#x", i, r.PC)
		}
	}
	if n := FillBatch(g, nil); n != 0 {
		t.Fatalf("FillBatch(nil) = %d", n)
	}
}

// TestReplayNextBatchMatchesNext proves the replay generator's batched
// path delivers the per-record stream, including wrap points and the Wraps
// counter.
func TestReplayNextBatchMatchesNext(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{PC: uint64(i) * 8, Addr: uint64(i) * 128, IsWrite: i%3 == 0}
	}
	const total = 64
	ref := NewReplayGenerator("r", recs)
	want := make([]Record, total)
	for i := range want {
		ref.Next(&want[i])
	}
	for _, sz := range []int{1, 4, 10, 25} {
		g := NewReplayGenerator("r", recs)
		got := make([]Record, 0, total)
		buf := make([]Record, sz)
		for len(got) < total {
			n := g.NextBatch(buf)
			if n <= 0 || n > sz {
				t.Fatalf("NextBatch(%d) = %d", sz, n)
			}
			got = append(got, buf[:n]...)
		}
		for i := 0; i < total; i++ {
			if got[i] != want[i] {
				t.Fatalf("batch %d: record %d = %+v, want %+v", sz, i, got[i], want[i])
			}
		}
		if g.Wraps != ref.Wraps && len(got) == total {
			// Wraps may differ by one if the batched cursor stopped just
			// short of a wrap the reference crossed; check the invariant
			// via position instead.
			wantPos := total % len(recs)
			if g.pos != wantPos && g.pos != wantPos+len(recs) {
				t.Fatalf("batch %d: pos %d after %d records", sz, g.pos, total)
			}
		}
	}
}
