package sim

import (
	"sync"
	"testing"

	"mpppb/internal/workload"
)

// TestSingleIPCCacheConcurrent hammers one SingleIPCCache from 16
// goroutines requesting overlapping mixes. Run under -race (the CI race
// job does) it proves the mutex + single-flight rewrite: no data race, and
// every caller observes exactly the serially-computed baseline IPCs.
func TestSingleIPCCacheConcurrent(t *testing.T) {
	cfg := MultiCoreConfig()
	cfg.Warmup = 20_000
	cfg.Measure = 60_000
	mixes := workload.Mixes(6, 7) // 6 mixes over a small segment pool: heavy overlap

	// Serial reference values, one fresh cache per segment lookup.
	want := make([][4]float64, len(mixes))
	ref := NewSingleIPCCache(cfg)
	for i, mix := range mixes {
		want[i] = ref.For(mix)
	}

	shared := NewSingleIPCCache(cfg)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for rep := 0; rep < 4; rep++ {
				for i, mix := range mixes {
					if got := shared.For(mix); got != want[i] {
						select {
						case errs <- mix.String():
						default:
						}
						return
					}
					_ = g
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	if m, bad := <-errs; bad {
		t.Fatalf("concurrent SingleIPCCache.For(%s) diverged from serial baseline", m)
	}
}
