// Quickstart: simulate one benchmark under LRU and under the paper's
// MPPPB policy, and print the improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpppb"
)

func main() {
	cfg := mpppb.SingleThreadConfig()
	// Keep the example fast: a few million instructions are enough to see
	// the effect on an LLC-thrashing workload.
	cfg.Warmup = 500_000
	cfg.Measure = 2_000_000

	seg := mpppb.Segment("libquantum_like", 0)

	lru, err := mpppb.Run(cfg, seg, "lru")
	if err != nil {
		log.Fatal(err)
	}
	mp, err := mpppb.Run(cfg, seg, "mpppb")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", seg)
	fmt.Printf("  LRU:    IPC %.3f, MPKI %.2f\n", lru.IPC, lru.MPKI)
	fmt.Printf("  MPPPB:  IPC %.3f, MPKI %.2f (%d fills bypassed)\n", mp.IPC, mp.MPKI, mp.Bypasses)
	fmt.Printf("  speedup over LRU: %.2fx\n", mp.IPC/lru.IPC)
}
