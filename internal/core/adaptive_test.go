package core

import (
	"strings"
	"testing"

	"mpppb/internal/cache"
	"mpppb/internal/trace"
)

func TestThresholdSetStringRoundTrip(t *testing.T) {
	orig := ThresholdSet{
		Tau0: 48, Tau1: -98, Tau2: -148, Tau3: -180, Tau4: 112,
		Pi: [3]int{12, 8, 4}, PromotePos: 1,
	}
	got, err := ParseThresholdSet(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip: %+v != %+v (spec %q)", got, orig, orig.String())
	}
}

func TestParseThresholdSetErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"1,2,3",                     // too few fields
		"1,2,3,4,5,6,7,8,9,10",      // too many
		"1,2,x,4,5,6,7,8,9",         // non-integer
		"1.5,2,3,4,5,6,7,8,9",       // float
		"1,2,3,4,5,6,7,8,9;1,2,3,4", // candidate separator in a single set
	} {
		if _, err := ParseThresholdSet(spec); err == nil {
			t.Errorf("ParseThresholdSet(%q) did not fail", spec)
		}
	}
}

func TestParseDuelCandidates(t *testing.T) {
	a := SingleThreadParams().Thresholds()
	b := MultiCoreParams().Thresholds()
	cands, err := ParseDuelCandidates(a.String() + "; " + b.String() + " ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || cands[0] != a || cands[1] != b {
		t.Fatalf("parsed %v, want [%v %v]", cands, a, b)
	}
	if _, err := ParseDuelCandidates(" ; "); err == nil {
		t.Fatal("empty duel spec did not fail")
	}
}

// TestDefaultDuelCandidatesValid: the default lineup for both machine
// configurations must start at the params' own thresholds and satisfy
// every candidate invariant in the host position space (the far
// candidate maps positions across the MDPP/SRRIP spaces, an easy place
// to produce an out-of-range value).
func TestDefaultDuelCandidatesValid(t *testing.T) {
	for _, p := range []Params{SingleThreadParams(), MultiCoreParams()} {
		cands := DefaultDuelCandidates(p)
		if len(cands) < 2 {
			t.Fatalf("%v: only %d candidates", p.Default, len(cands))
		}
		if cands[0] != p.Thresholds() {
			t.Fatalf("%v: candidate 0 %v is not the params' own thresholds %v", p.Default, cands[0], p.Thresholds())
		}
		maxPos := maxPlacementPosition(p.Default)
		for i, c := range cands {
			if err := c.validate(maxPos); err != nil {
				t.Fatalf("%v: candidate %d invalid: %v", p.Default, i, err)
			}
		}
	}
}

// TestParamsValidate exercises each documented invariant separately.
func TestParamsValidate(t *testing.T) {
	if err := SingleThreadParams().Validate(); err != nil {
		t.Fatalf("default single-thread params invalid: %v", err)
	}
	if err := AdaptiveMultiCoreParams().Validate(); err != nil {
		t.Fatalf("default adaptive params invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
		want   string
	}{
		{"empty features", func(p *Params) { p.Features = nil }, "empty feature set"},
		{"tau1 <= tau2", func(p *Params) { p.Tau1 = p.Tau2 }, "not descending"},
		{"tau2 <= tau3", func(p *Params) { p.Tau2 = p.Tau3 - 1 }, "not descending"},
		{"pi out of range", func(p *Params) { p.Pi[1] = 16 }, "placement position"},
		{"negative pi", func(p *Params) { p.Pi[0] = -1 }, "placement position"},
		{"promote out of range", func(p *Params) { p.PromotePos = 99 }, "promotion position"},
		{"sampler sets", func(p *Params) { p.SamplerSets = 0 }, "SamplerSets"},
		{"theta", func(p *Params) { p.Theta = 0 }, "Theta"},
		{"cores", func(p *Params) { p.Cores = 0 }, "Cores"},
		{"one duel candidate", func(p *Params) {
			p.Duel = &DuelConfig{Candidates: []ThresholdSet{p.Thresholds()}}
		}, "at least 2 candidates"},
		{"invalid duel candidate", func(p *Params) {
			bad := p.Thresholds()
			bad.Tau3 = bad.Tau1 + 1
			p.Duel = &DuelConfig{Candidates: []ThresholdSet{p.Thresholds(), bad}}
		}, "duel candidate 1"},
		{"duel pselmax", func(p *Params) { p.Duel = &DuelConfig{PselMax: -1} }, "PselMax"},
	}
	for _, c := range cases {
		p := SingleThreadParams()
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate did not fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestNewAdvisorPanicsOnInvalidParams: construction is the enforcement
// point — a mis-ordered config from a search must fail loudly, not make
// placement tiers silently unreachable.
func TestNewAdvisorPanicsOnInvalidParams(t *testing.T) {
	p := SingleThreadParams()
	p.Tau2 = p.Tau1 + 5 // breaks Tau1 > Tau2
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdvisor with non-descending thresholds did not panic")
		}
	}()
	NewAdvisor(64, p)
}

// duelTestParams builds a 2-candidate duel with a tiny window so tests
// can step window boundaries precisely: one group, so exactly one leader
// set per candidate (sets 0 and 1 under DuelLeaders' layout).
func duelTestParams(window uint64, pselMax int) Params {
	p := SingleThreadParams()
	alt := p.Thresholds()
	alt.Tau1 += 8
	alt.Tau4 += 8
	p.Duel = &DuelConfig{
		Candidates: []ThresholdSet{p.Thresholds(), alt},
		Groups:     1,
		Window:     window,
		PselMax:    pselMax,
	}
	return p
}

func TestDuelWindowPselAndSwitch(t *testing.T) {
	v := NewAdvisor(64, duelTestParams(4, 2))
	d := v.duel
	lead := make([]int, 2)
	for c := range lead {
		lead[c] = -1
	}
	for s := 0; s < 64; s++ {
		if k := v.DuelLeaderKind(s); k >= 0 {
			lead[k] = s
		}
	}
	if lead[0] < 0 || lead[1] < 0 {
		t.Fatalf("missing leader sets: %v", lead)
	}

	// The incumbent opens with full hysteresis: a lucky first window must
	// not be enough to migrate the followers.
	if snap, _ := v.DuelSnapshot(); snap.Psel != 2 {
		t.Fatalf("duel opened with psel %d, want pselMax (2)", snap.Psel)
	}

	// Candidate 1's leader misses fill the window: candidate 0 (fewer
	// misses) is the incumbent and wins, charging PSEL toward pselMax —
	// and never past it.
	for w := 0; w < 5; w++ {
		for i := 0; i < 4; i++ {
			d.vote(lead[1])
		}
	}
	snap, on := v.DuelSnapshot()
	if !on {
		t.Fatal("duel not active")
	}
	if snap.Winner != 0 || snap.Psel != 2 || snap.Switches != 0 {
		t.Fatalf("after incumbent wins: %+v, want winner 0, psel saturated at 2", snap)
	}
	if snap.Events != 0 || snap.Misses[0] != 0 || snap.Misses[1] != 0 {
		t.Fatalf("window did not reset: %+v", snap)
	}

	// Now candidate 0's leaders miss: the challenger must drain PSEL
	// (2 windows) before the switch lands on the third.
	for w := 0; w < 2; w++ {
		for i := 0; i < 4; i++ {
			d.vote(lead[0])
		}
		snap, _ = v.DuelSnapshot()
		if snap.Winner != 0 {
			t.Fatalf("switched with PSEL hysteresis remaining: %+v", snap)
		}
	}
	for i := 0; i < 4; i++ {
		d.vote(lead[0])
	}
	snap, _ = v.DuelSnapshot()
	if snap.Winner != 1 || snap.Switches != 1 || snap.Psel != 0 {
		t.Fatalf("challenger did not take over: %+v", snap)
	}

	// Follower sets read the new winner's thresholds; leaders keep their own.
	follower := -1
	for s := 0; s < 64; s++ {
		if v.DuelLeaderKind(s) == -1 {
			follower = s
			break
		}
	}
	if got := v.thresholdsFor(follower); *got != d.cands[1] {
		t.Fatalf("follower reads %v, want winner candidate 1 %v", *got, d.cands[1])
	}
	if got := v.thresholdsFor(lead[0]); *got != d.cands[0] {
		t.Fatalf("leader 0 reads %v, want its own candidate %v", *got, d.cands[0])
	}
}

// TestDuelVoteIgnoresFollowers: follower misses must not advance the
// window — the duel samples only leader behavior.
func TestDuelVoteIgnoresFollowers(t *testing.T) {
	v := NewAdvisor(64, duelTestParams(2, 1))
	follower := -1
	for s := 0; s < 64; s++ {
		if v.DuelLeaderKind(s) == -1 {
			follower = s
			break
		}
	}
	for i := 0; i < 100; i++ {
		v.duelVote(follower)
	}
	snap, _ := v.DuelSnapshot()
	if snap.Events != 0 {
		t.Fatalf("follower votes advanced the window: %+v", snap)
	}
}

// TestAdaptiveAdvisorMirrorsMPPPB extends the decoupling guarantee to
// adaptive mode: the same access stream through the inline adaptive
// policy and a standalone adaptive advisor must leave identical decision
// counters AND identical duel state (winner, PSEL, window position,
// per-candidate miss counts, switch count). This pins the vote-ordering
// rule — exactly one vote per non-writeback miss, taken before any
// threshold read, on both paths.
func TestAdaptiveAdvisorMirrorsMPPPB(t *testing.T) {
	const sets, ways = 64, 4
	params := AdaptiveSingleThreadParams()
	params.SamplerSets = 16

	m := NewMPPPB(sets, ways, params)
	llc := cache.New("llc", sets, ways, m)
	adv := NewAdvisor(sets, params)

	gen := newTestGen(98765)
	var rec trace.Record
	for i := 0; i < 200_000; i++ {
		gen.Next(&rec)
		a := cache.Access{PC: rec.PC, Addr: rec.Addr, Type: trace.Load}
		if rec.IsWrite {
			a.Type = trace.Store
		}
		set := llc.SetIndex(a.Block())
		r := llc.Access(a)
		if r.Hit {
			adv.AdviseHit(a, set)
			continue
		}
		mayBypass := r.Bypassed || r.EvictedValid
		ad := adv.AdviseMiss(a, set, mayBypass)
		if ad.Bypass != r.Bypassed {
			t.Fatalf("access %d: advisor bypass=%v, inline policy bypass=%v", i, ad.Bypass, r.Bypassed)
		}
	}

	if m.Stats() != adv.Stats() {
		t.Fatalf("decision counters diverged:\n  inline  %v\n  advisor %v", m.Stats(), adv.Stats())
	}
	mSnap, mOn := m.DuelSnapshot()
	aSnap, aOn := adv.DuelSnapshot()
	if !mOn || !aOn {
		t.Fatalf("duel inactive: inline %v, advisor %v", mOn, aOn)
	}
	if mSnap.Winner != aSnap.Winner || mSnap.Psel != aSnap.Psel ||
		mSnap.Events != aSnap.Events || mSnap.Switches != aSnap.Switches {
		t.Fatalf("duel state diverged:\n  inline  %+v\n  advisor %+v", mSnap, aSnap)
	}
	for c := range mSnap.Misses {
		if mSnap.Misses[c] != aSnap.Misses[c] {
			t.Fatalf("candidate %d window misses: inline %d, advisor %d", c, mSnap.Misses[c], aSnap.Misses[c])
		}
	}
	if mSnap.Events == 0 && mSnap.Switches == 0 && mSnap.Psel == 0 {
		t.Fatal("degenerate run: the duel never saw a leader miss")
	}
	if err := adv.CheckState(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveName(t *testing.T) {
	m := NewMPPPB(64, 16, AdaptiveSingleThreadParams())
	if got := m.Name(); got != "mpppb-mdpp-adaptive" {
		t.Fatalf("Name() = %q", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
