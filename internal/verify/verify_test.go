package verify

import (
	"strings"
	"testing"

	"mpppb/internal/cache"
	"mpppb/internal/core"
	"mpppb/internal/policy"
	"mpppb/internal/trace"
	"mpppb/internal/xrand"
)

// drive runs deterministic pseudo-random traffic — loads, stores,
// prefetches, writebacks, and occasional invalidates — against a checked
// cache. Any divergence panics (the checker default), failing the test.
func drive(t *testing.T, c *cache.Cache, k *Checker, accesses int, seed uint64) {
	t.Helper()
	rng := xrand.New(seed)
	// A small footprint so sets see heavy reuse and eviction pressure.
	footprint := uint64(c.Sets() * c.Ways() * 4)
	for i := 0; i < accesses; i++ {
		block := rng.Uint64() % footprint
		addr := block*trace.BlockSize + uint64(rng.Intn(trace.BlockSize))
		typ := trace.Load
		switch rng.Intn(10) {
		case 0:
			typ = trace.Store
		case 1:
			typ = trace.Prefetch
		case 2:
			typ = trace.Writeback
		}
		a := cache.Access{
			PC:   0x400000 + uint64(rng.Intn(64))*4,
			Addr: addr,
			Type: typ,
			Core: rng.Intn(4),
		}
		c.Access(a)
		if rng.Intn(97) == 0 {
			c.Invalidate(rng.Uint64() % footprint)
		}
	}
	k.Finish()
	if k.Events() == 0 {
		t.Fatal("checker observed no events")
	}
	if k.Divergences() != 0 {
		t.Fatalf("%d divergences", k.Divergences())
	}
}

func TestOracleLRU(t *testing.T) {
	c := cache.New("l1", 16, 8, policy.NewLRU(16, 8))
	drive(t, c, Attach(c), 50_000, 1)
}

func TestOracleSRRIP(t *testing.T) {
	c := cache.New("llc", 32, 8, policy.NewSRRIP(32, 8))
	drive(t, c, Attach(c), 50_000, 2)
}

func TestOraclePLRU(t *testing.T) {
	c := cache.New("llc", 16, 16, policy.NewTreePLRU(16, 16))
	drive(t, c, Attach(c), 50_000, 3)
}

func TestOracleMDPP(t *testing.T) {
	c := cache.New("llc", 16, 16, policy.NewMDPP(16, 16))
	drive(t, c, Attach(c), 50_000, 4)
}

func TestOracleMPPPBOverMDPP(t *testing.T) {
	sets, ways := 64, 16
	c := cache.New("llc", sets, ways, core.NewMPPPB(sets, ways, core.SingleThreadParams()))
	drive(t, c, Attach(c), 80_000, 5)
}

func TestOracleMPPPBOverSRRIP(t *testing.T) {
	sets, ways := 64, 16
	c := cache.New("llc", sets, ways, core.NewMPPPB(sets, ways, core.MultiCoreParams()))
	drive(t, c, Attach(c), 80_000, 6)
}

// TestOracleMPPPBAdaptive runs the lockstep oracle against the adaptive
// (set-dueling) policies: the reference duel must mirror every vote the
// inline policy takes through its Victim/Fill hooks, across both default
// policies and their distinct position spaces.
func TestOracleMPPPBAdaptive(t *testing.T) {
	sets, ways := 64, 16
	c := cache.New("llc", sets, ways, core.NewMPPPB(sets, ways, core.AdaptiveSingleThreadParams()))
	drive(t, c, Attach(c), 80_000, 11)
	c = cache.New("llc", sets, ways, core.NewMPPPB(sets, ways, core.AdaptiveMultiCoreParams()))
	drive(t, c, Attach(c), 80_000, 12)
}

// TestOracleMPPPBNoBypass exercises the Victim→Fill memo path exclusively.
func TestOracleMPPPBNoBypass(t *testing.T) {
	sets, ways := 64, 16
	params := core.SingleThreadParams()
	params.BypassEnabled = false
	c := cache.New("llc", sets, ways, core.NewMPPPB(sets, ways, params))
	drive(t, c, Attach(c), 80_000, 7)
}

// buggyLRU is true LRU with an injected off-by-one: when the set's LRU
// block sits in way 0 it victimizes way 1 instead. The differential oracle
// must catch the first wrong victim with a set-level diff.
type buggyLRU struct {
	*policy.LRU
}

func (b *buggyLRU) Victim(set int, a cache.Access) (int, bool) {
	w, bypass := b.LRU.Victim(set, a)
	if w == 0 {
		w = 1
	}
	return w, bypass
}

func TestOracleCatchesInjectedOffByOne(t *testing.T) {
	sets, ways := 8, 4
	c := cache.New("llc", sets, ways, &buggyLRU{LRU: policy.NewLRU(sets, ways)})
	k := AttachWithLRUOracle(c)
	var got []error
	k.Fail = func(err error) { got = append(got, err) }

	rng := xrand.New(99)
	for i := 0; i < 10_000 && len(got) == 0; i++ {
		block := rng.Uint64() % uint64(sets*ways*4)
		c.Access(cache.Access{PC: 0x1000, Addr: block * trace.BlockSize, Type: trace.Load})
	}
	if len(got) == 0 {
		t.Fatal("oracle did not catch the injected off-by-one victim")
	}
	div, ok := got[0].(*DivergenceError)
	if !ok {
		t.Fatalf("expected *DivergenceError, got %T: %v", got[0], got[0])
	}
	if !strings.Contains(div.Detail, "victim") {
		t.Errorf("divergence detail %q does not name the victim disagreement", div.Detail)
	}
	if !strings.Contains(div.Dump, "reference") {
		t.Errorf("divergence dump %q lacks the reference set state", div.Dump)
	}
	if div.Event == 0 && k.Events() > 0 {
		// Event carries the 0-based access index; just ensure it is within range.
		t.Logf("divergence at first access")
	}
	if div.Event > k.Events() {
		t.Errorf("divergence event %d beyond observed events %d", div.Event, k.Events())
	}
}

// TestOracleCatchesBuggyPromotion injects a wrong hit-promotion RRPV into
// SRRIP via a wrapper and checks the per-set state comparison trips.
type buggySRRIP struct {
	*policy.SRRIP
}

func (b *buggySRRIP) Hit(set, way int, a cache.Access) {
	b.SRRIP.Hit(set, way, a)
	b.SetRRPV(set, way, policy.RRPVNear) // off by one from RRPVImmediate
}

func TestOracleCatchesBuggyPromotion(t *testing.T) {
	sets, ways := 8, 4
	inner := policy.NewSRRIP(sets, ways)
	c := cache.New("llc", sets, ways, &buggySRRIP{SRRIP: inner})
	k := &Checker{c: c, sweepEvery: DefaultSweepEvery}
	var got []error
	k.Fail = func(err error) { got = append(got, err) }
	k.shadow = &shadowPolicy{k: k, inner: c.Policy(), o: newSRRIPOracle(k, inner, sets, ways)}
	k.model = newCacheModel(k, c)
	c.SetPolicy(k.shadow)
	c.SetObserver(k.model)

	rng := xrand.New(7)
	for i := 0; i < 10_000 && len(got) == 0; i++ {
		block := rng.Uint64() % uint64(sets*ways)
		c.Access(cache.Access{PC: 0x1000, Addr: block * trace.BlockSize, Type: trace.Load})
	}
	if len(got) == 0 {
		t.Fatal("oracle did not catch the injected promotion bug")
	}
	if !strings.Contains(got[0].Error(), "rrpv") {
		t.Errorf("divergence %v does not name the RRPV disagreement", got[0])
	}
}
