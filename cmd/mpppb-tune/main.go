// Command mpppb-tune searches MPPPB's threshold and position parameters
// (τ0..τ4, π1..π3) by the paper's Section 5.5 methodology: exhaustive
// sweep of the bypass threshold τ0, then random feasible combinations of
// the remaining parameters, minimizing average MPKI over a training subset
// of the suite.
//
//	mpppb-tune -mode st -segments 12 -combos 200
//	mpppb-tune -mode mp -combos 100
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mpppb/internal/core"
	"mpppb/internal/experiments"
	"mpppb/internal/parallel"
	"mpppb/internal/prof"
	"mpppb/internal/search"
	"mpppb/internal/sim"
	"mpppb/internal/xrand"
)

func main() {
	var (
		mode     = flag.String("mode", "st", "st (single-thread/MDPP) or mp (multi-core feature set, SRRIP)")
		segments = flag.Int("segments", 12, "training segments")
		combos   = flag.Int("combos", 200, "random feasible combinations to try")
		warmup   = flag.Uint64("warmup", 400_000, "warmup instructions")
		measure  = flag.Uint64("measure", 1_200_000, "measured instructions")
		seed     = flag.Uint64("seed", 55, "search seed")
		tau0step = flag.Int("tau0-step", 16, "exhaustive tau0 sweep step")
		j        = flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines; each evaluation fans its training segments across them (1 = serial)")
	)
	flag.Parse()
	defer prof.Start()()
	parallel.SetDefault(*j)

	cfg := sim.SingleThreadConfig()
	params := core.SingleThreadParams()
	if *mode == "mp" {
		params = core.MultiCoreParams()
		params.Cores = 1 // tuned on single-thread MPKI runs, as a fast proxy
	}
	cfg.Warmup, cfg.Measure = *warmup, *measure

	ev := &search.ThresholdEvaluator{Cfg: cfg, Training: experiments.TrainingSegments(*segments)}
	fmt.Fprintf(os.Stderr, "training on %d segments\n", len(ev.Training))

	base := ev.MPKI(params)
	fmt.Fprintf(os.Stderr, "baseline %.4f MPKI (tau0=%d tau=%d,%d,%d,%d pi=%v)\n",
		base, params.Tau0, params.Tau1, params.Tau2, params.Tau3, params.Tau4, params.Pi)

	tau0, m := ev.SearchTau0(params, 0, core.ConfMax, *tau0step, func(t int, m float64) {
		fmt.Fprintf(os.Stderr, "tau0=%-4d %.4f\n", t, m)
	})
	params.Tau0 = tau0
	fmt.Fprintf(os.Stderr, "best tau0=%d (%.4f MPKI)\n", tau0, m)

	rng := xrand.New(*seed)
	best, bestMPKI := search.SearchThresholds(ev, rng, params, *combos, func(i int, b float64) {
		if (i+1)%20 == 0 {
			fmt.Fprintf(os.Stderr, "combo %d/%d best %.4f\n", i+1, *combos, b)
		}
	})

	fmt.Printf("mode=%s evaluations=%d\n", *mode, ev.Evals)
	fmt.Printf("baseline MPKI %.4f -> tuned %.4f\n", base, bestMPKI)
	fmt.Printf("Tau0: %d\nTau1: %d\nTau2: %d\nTau3: %d\nTau4: %d\nPi:   %v\n",
		best.Tau0, best.Tau1, best.Tau2, best.Tau3, best.Tau4, best.Pi)
}
