package belady

import (
	"testing"
	"testing/quick"

	"mpppb/internal/cache"
	"mpppb/internal/policy"
	"mpppb/internal/trace"
	"mpppb/internal/xrand"
)

func load(block uint64) cache.Access {
	return cache.Access{Addr: block << trace.BlockBits, Type: trace.Load, PC: 0x400}
}

func TestNextUse(t *testing.T) {
	stream := []uint64{1, 2, 1, 3, 2, 1}
	next := NextUse(stream)
	want := []int64{2, 4, 5, infinity, infinity, infinity}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
	if NextUse(nil) != nil && len(NextUse(nil)) != 0 {
		t.Fatal("NextUse(nil) not empty")
	}
}

// runWithPolicy drives a block stream through a tiny cache and returns the
// miss count (fills + bypasses).
func runWithPolicy(stream []uint64, sets, ways int, pol cache.ReplacementPolicy) uint64 {
	c := cache.New("t", sets, ways, pol)
	for _, b := range stream {
		c.Access(load(b))
	}
	return c.Stats.DemandMisses
}

// record captures the reference stream via a Recorder over LRU.
func record(stream []uint64, sets, ways int) *Recorder {
	rec := NewRecorder(policy.NewLRU(sets, ways))
	c := cache.New("t", sets, ways, rec)
	for _, b := range stream {
		c.Access(load(b))
	}
	return rec
}

func TestRecorderCapturesStream(t *testing.T) {
	stream := []uint64{1, 2, 1, 3, 2, 1, 9, 9}
	rec := record(stream, 2, 2)
	got := rec.Stream()
	if len(got) != len(stream) {
		t.Fatalf("recorded %d of %d accesses", len(got), len(stream))
	}
	for i := range stream {
		if got[i] != stream[i] {
			t.Fatalf("recorded[%d] = %d, want %d", i, got[i], stream[i])
		}
	}
}

func TestRecorderSkipsWritebacks(t *testing.T) {
	rec := NewRecorder(policy.NewLRU(1, 2))
	c := cache.New("t", 1, 2, rec)
	c.Access(load(1))
	c.Access(cache.Access{Addr: 1 << trace.BlockBits, Type: trace.Writeback})
	if len(rec.Stream()) != 1 {
		t.Fatalf("writeback recorded: stream %v", rec.Stream())
	}
}

func TestMINOptimalOnCyclicThrash(t *testing.T) {
	// Cyclic access to W+1 blocks in a W-way set: LRU misses always, MIN
	// keeps W-1 of them resident.
	var stream []uint64
	for round := 0; round < 50; round++ {
		for b := uint64(0); b < 5; b++ {
			stream = append(stream, b*4) // same set (4 sets: block%4==0 -> set 0)
		}
	}
	lruMisses := runWithPolicy(stream, 4, 4, policy.NewLRU(4, 4))
	rec := record(stream, 4, 4)
	min := NewMIN(4, 4, rec.Stream())
	minMisses := runWithPolicy(stream, 4, 4, min)
	if lruMisses != uint64(len(stream)) {
		t.Fatalf("LRU misses %d, expected full thrash %d", lruMisses, len(stream))
	}
	// MIN: first round all 5 miss; then one miss per round.
	if minMisses > uint64(5+49*1) {
		t.Fatalf("MIN misses %d, want <= %d", minMisses, 5+49)
	}
}

func TestMINNeverWorseThanLRUOrPLRU(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seed uint64, n uint16) bool {
		rng := xrand.New(seed)
		length := int(n%2000) + 100
		stream := make([]uint64, length)
		for i := range stream {
			// Mix of hot and cold blocks.
			if rng.Intn(2) == 0 {
				stream[i] = rng.Uint64n(8)
			} else {
				stream[i] = 8 + rng.Uint64n(256)
			}
		}
		lruMisses := runWithPolicy(stream, 2, 4, policy.NewLRU(2, 4))
		rec := record(stream, 2, 4)
		minMisses := runWithPolicy(stream, 2, 4, NewMIN(2, 4, rec.Stream()))
		return minMisses <= lruMisses
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMINWithoutBypassStillOptimalish(t *testing.T) {
	rng := xrand.New(42)
	stream := make([]uint64, 3000)
	for i := range stream {
		stream[i] = rng.Uint64n(64)
	}
	rec := record(stream, 2, 4)
	withBypass := NewMIN(2, 4, rec.Stream())
	missA := runWithPolicy(stream, 2, 4, withBypass)
	noBypass := NewMIN(2, 4, rec.Stream())
	noBypass.Bypass = false
	missB := runWithPolicy(stream, 2, 4, noBypass)
	if missA > missB {
		t.Fatalf("bypass made MIN worse: %d > %d", missA, missB)
	}
}

func TestMINReplayDivergencePanics(t *testing.T) {
	rec := record([]uint64{1, 2, 3}, 1, 2)
	min := NewMIN(1, 2, rec.Stream())
	c := cache.New("t", 1, 2, min)
	c.Access(load(1))
	defer func() {
		if recover() == nil {
			t.Fatal("divergent replay did not panic")
		}
	}()
	c.Access(load(9)) // recorded stream says block 2
}

func TestMINRunsPastStreamPanics(t *testing.T) {
	rec := record([]uint64{1}, 1, 2)
	min := NewMIN(1, 2, rec.Stream())
	c := cache.New("t", 1, 2, min)
	c.Access(load(1))
	defer func() {
		if recover() == nil {
			t.Fatal("replay past stream end did not panic")
		}
	}()
	c.Access(load(1))
}

func TestMINBypassesNeverUsedBlocks(t *testing.T) {
	// Blocks 100.. are touched once each (dead on arrival); blocks 0..3
	// loop. Once the set fills, MIN must bypass the one-shot blocks.
	var stream []uint64
	for i := 0; i < 200; i++ {
		stream = append(stream, uint64(i%4)*1) // set 0 of 1 set
		stream = append(stream, uint64(100+i))
	}
	rec := record(stream, 1, 4)
	min := NewMIN(1, 4, rec.Stream())
	c := cache.New("t", 1, 4, min)
	for _, b := range stream {
		c.Access(load(b))
	}
	if c.Stats.Bypasses == 0 {
		t.Fatal("MIN never bypassed dead-on-arrival blocks")
	}
	// The four hot blocks should essentially always hit after warmup.
	hitRate := float64(c.Stats.DemandHits) / float64(c.Stats.DemandAccesses)
	if hitRate < 0.45 {
		t.Fatalf("hit rate %.3f with optimal bypass, want ~0.5", hitRate)
	}
}
