// trace-replay: capture a workload segment to a binary trace file, then
// replay it through the simulator under two policies. The same path feeds
// externally collected program traces to the simulator (see
// cmd/mpppb-trace and the trace package's file format).
//
//	go run ./examples/trace-replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mpppb"
)

func main() {
	dir, err := os.MkdirTemp("", "mpppb-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sphinx3.trc")

	// Capture 800k records of a thrash-loop segment.
	gen := mpppb.NewGenerator(mpppb.Segment("sphinx3_like", 1), 0)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mpppb.NewTraceWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	var rec mpppb.TraceRecord
	for i := 0; i < 800_000; i++ {
		gen.Next(&rec)
		if err := w.Add(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("captured %d records to %s (%.2f MB, %.2f bytes/record)\n",
		w.Count(), path, float64(fi.Size())/(1<<20), float64(fi.Size())/float64(w.Count()))

	// Replay under LRU and MPPPB.
	data, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := mpppb.ReadTrace(data)
	data.Close()
	if err != nil {
		log.Fatal(err)
	}

	cfg := mpppb.SingleThreadConfig()
	cfg.Warmup = 400_000
	cfg.Measure = 1_200_000
	for _, pol := range []string{"lru", "mpppb"} {
		res, err := mpppb.RunTrace(cfg, "sphinx3.trc", recs, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s IPC %.3f  MPKI %.2f\n", pol, res.IPC, res.MPKI)
	}
}
