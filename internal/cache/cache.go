// Package cache implements the set-associative cache model and the
// three-level hierarchy used by the simulator, mirroring the methodology of
// Section 4.1 of the paper: 32KB 8-way L1 data cache, 256KB 8-way unified
// L2, and a 16-way last-level cache of 2MB (single-thread) or 8MB
// (multi-programmed), with 64-byte blocks throughout and a 200-cycle DRAM
// latency.
//
// Replacement decisions are delegated to a ReplacementPolicy, which is where
// LRU, SRRIP, MDPP, the baselines (SDBP, Perceptron, Hawkeye) and the
// paper's MPPPB all plug in. Policies see every lookup outcome via
// Hit/Victim/Fill/Evict callbacks; Victim may additionally request bypass,
// which the paper's techniques use for dead-on-arrival blocks.
package cache

import (
	"fmt"

	"mpppb/internal/trace"
)

// Access is a single reference presented to a cache.
type Access struct {
	// PC is the address of the memory instruction responsible (the fake
	// trace.PrefetchPC for hardware prefetches).
	PC uint64
	// Addr is the byte address referenced.
	Addr uint64
	// Type is the access type (load, store, prefetch, writeback).
	Type trace.AccessType
	// Core identifies the requesting core in multi-core simulations.
	Core int
	// Now is the current cycle, used for prefetch-timeliness modelling
	// (zero in untimed runs).
	Now uint64
}

// Block returns the block address of the access.
func (a Access) Block() uint64 { return a.Addr >> trace.BlockBits }

// Offset returns the byte offset of the access within its block.
func (a Access) Offset() uint64 { return a.Addr & (trace.BlockSize - 1) }

// IsDemand reports whether the access is a demand load or store.
func (a Access) IsDemand() bool { return a.Type == trace.Load || a.Type == trace.Store }

// Frame storage is struct-of-arrays: the per-frame fields live in parallel
// slices (addrs, readyAts, flags), row-major by set, rather than in an
// array of frame structs. The way scan in Lookup/access then streams over a
// contiguous lane of 8-byte block addresses — ways*8 bytes per set, two
// cache lines for a 16-way LLC — instead of striding 24-byte structs, and
// the three booleans pack into one byte per frame.
//
// Invalid frames additionally hold the sentinel noBlock in the address
// lane, so a tag-lane comparison can never match a stale address; flags
// remain the authority on validity.

// noBlock is the address-lane value of an invalid frame. Real block
// addresses are byte addresses shifted right by trace.BlockBits, so the
// all-ones value is unreachable.
const noBlock = ^uint64(0)

// Per-frame flag bits, packed one byte per frame.
const (
	frameValid      uint8 = 1 << 0
	frameDirty      uint8 = 1 << 1
	framePrefetched uint8 = 1 << 2
)

// ReplacementPolicy receives lookup outcomes and chooses victims for one
// cache. Implementations are constructed for a specific geometry (number of
// sets and ways) and must only be attached to a cache with that geometry.
type ReplacementPolicy interface {
	// Name identifies the policy, e.g. "lru" or "mpppb-mdpp".
	Name() string
	// Hit is invoked when a lookup hits way `way` of set `set`.
	Hit(set, way int, a Access)
	// Victim chooses the way to evict for an incoming fill into `set`, or
	// returns bypass=true to not cache the block at all. It is only
	// consulted when the set has no invalid frame. The returned way is
	// ignored when bypass is true.
	Victim(set int, a Access) (way int, bypass bool)
	// Fill is invoked after the incoming block is installed in (set, way),
	// including fills into previously-invalid frames.
	Fill(set, way int, a Access)
	// Evict is invoked when the valid block at (set, way) is about to be
	// replaced or invalidated. blockAddr is the full block address of the
	// victim.
	Evict(set, way int, blockAddr uint64)
}

// Stats aggregates per-cache event counts. Demand statistics exclude
// prefetch and writeback traffic; MPKI in the paper is demand misses per
// kilo-instruction.
type Stats struct {
	Accesses       uint64 // all lookups
	Hits           uint64
	Misses         uint64
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64
	// Prefetch statistics cover hardware-prefetch lookups; the paper-style
	// MPKI metric counts demand and prefetch misses together.
	PrefetchAccesses uint64
	PrefetchMisses   uint64
	PrefetchFills    uint64 // blocks installed by prefetches
	Bypasses         uint64 // fills the policy chose not to cache
	Evictions        uint64 // valid blocks replaced
	Writebacks       uint64 // dirty blocks evicted
}

// Result describes the outcome of one cache access.
type Result struct {
	// Hit reports whether the lookup hit.
	Hit bool
	// Bypassed reports whether the policy declined to cache a missing block.
	Bypassed bool
	// Set and Way locate the block touched or filled (meaningless when
	// Bypassed).
	Set, Way int
	// EvictedValid reports whether a valid block was evicted by the fill.
	EvictedValid bool
	// EvictedAddr is the block address of the eviction victim.
	EvictedAddr uint64
	// EvictedDirty reports whether the victim was dirty (needs writeback).
	EvictedDirty bool
	// ReadyAt is the hit block's data-arrival cycle (prefetch timeliness);
	// zero when the data is already present.
	ReadyAt uint64
}

// Observer receives every completed cache operation. The verification
// layer attaches one to run a naive reference cache model in lockstep
// with the production array; when none is attached the cost is a single
// nil check per access.
type Observer interface {
	// OnAccess is invoked after an Access completes, with the final result.
	OnAccess(a Access, r Result)
	// OnInvalidate is invoked after an Invalidate, whether or not the
	// block was present.
	OnInvalidate(blockAddr uint64, present bool)
}

// Cache is one level of set-associative cache.
type Cache struct {
	name    string
	sets    int
	ways    int
	setMask uint64
	// Struct-of-arrays frame storage, sets*ways each, row-major by set.
	addrs    []uint64 // block-address (tag) lane; noBlock when invalid
	readyAts []uint64 // data-arrival cycles
	flags    []uint8  // frameValid | frameDirty | framePrefetched
	policy   ReplacementPolicy
	obs      Observer

	// Stats accumulates event counts; callers may read or reset it
	// between measurement phases.
	Stats Stats
}

// New constructs a cache with the given geometry. sizeBytes must be
// sets*ways*trace.BlockSize; the constructor takes sets and ways directly
// to keep geometry errors loud. The number of sets must be a power of two.
func New(name string, sets, ways int, policy ReplacementPolicy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive geometry %dx%d", name, sets, ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d is not a power of two", name, sets))
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		setMask:  uint64(sets - 1),
		addrs:    make([]uint64, sets*ways),
		readyAts: make([]uint64, sets*ways),
		flags:    make([]uint8, sets*ways),
		policy:   policy,
	}
	for i := range c.addrs {
		c.addrs[i] = noBlock
	}
	return c
}

// NewBySize constructs a cache from a total size in bytes and associativity.
func NewBySize(name string, sizeBytes, ways int, policy ReplacementPolicy) *Cache {
	blocks := sizeBytes / trace.BlockSize
	if blocks%ways != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d ways", name, sizeBytes, ways))
	}
	return New(name, blocks/ways, ways, policy)
}

// Name returns the cache's identifying name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * trace.BlockSize }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() ReplacementPolicy { return c.policy }

// SetObserver attaches an observer (nil detaches). Observers see every
// Access and Invalidate after it completes.
func (c *Cache) SetObserver(obs Observer) { c.obs = obs }

// SetPolicy replaces the attached replacement policy. The verification
// layer uses it to interpose a shadow wrapper before the first access;
// swapping mid-run would lose per-block replacement state.
func (c *Cache) SetPolicy(p ReplacementPolicy) { c.policy = p }

// SetIndex returns the set index for a block address.
func (c *Cache) SetIndex(blockAddr uint64) int { return int(blockAddr & c.setMask) }

// Lookup probes the cache without changing any state. It returns the way
// holding the block, or -1 on a miss.
func (c *Cache) Lookup(blockAddr uint64) (set, way int) {
	set = c.SetIndex(blockAddr)
	base := set * c.ways
	// Invalid frames hold noBlock in the tag lane, so a match implies valid.
	for w, a := range c.addrs[base : base+c.ways] {
		if a == blockAddr {
			return set, w
		}
	}
	return set, -1
}

// Contains reports whether the block is present.
func (c *Cache) Contains(blockAddr uint64) bool {
	_, way := c.Lookup(blockAddr)
	return way >= 0
}

// BlockAddrAt returns the block address stored in (set, way) and whether
// the frame is valid.
func (c *Cache) BlockAddrAt(set, way int) (uint64, bool) {
	i := set*c.ways + way
	if c.flags[i]&frameValid == 0 {
		return 0, false
	}
	return c.addrs[i], true
}

// IsPrefetchedAt reports whether the block in (set, way) was installed by a
// prefetch and has not yet been demand-referenced.
func (c *Cache) IsPrefetchedAt(set, way int) bool {
	return c.flags[set*c.ways+way]&framePrefetched != 0
}

// Access performs a full lookup-and-fill. On a miss the block is installed
// (unless the policy bypasses it); the caller is responsible for propagating
// the miss to the next level first if fill data ordering matters (the
// simulator fills bottom-up, so lower levels are accessed before upper
// levels install).
func (c *Cache) Access(a Access) Result {
	r := c.access(a)
	if verifyAsserts {
		c.assertSetWellFormed(r.Set)
	}
	if c.obs != nil {
		c.obs.OnAccess(a, r)
	}
	return r
}

// access is the lookup-and-fill body; Access wraps it with the optional
// observer notification and build-tag assertions.
func (c *Cache) access(a Access) Result {
	blockAddr := a.Block()
	set := c.SetIndex(blockAddr)
	base := set * c.ways

	c.Stats.Accesses++
	demand := a.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
	} else if a.Type == trace.Prefetch {
		c.Stats.PrefetchAccesses++
	}

	// Probe: one pass over the set's contiguous tag lane. Invalid frames
	// hold noBlock, so a match implies a valid frame.
	for w, fa := range c.addrs[base : base+c.ways] {
		if fa != blockAddr {
			continue
		}
		i := base + w
		c.Stats.Hits++
		if demand {
			c.Stats.DemandHits++
			c.flags[i] &^= framePrefetched
		}
		if a.Type == trace.Store || a.Type == trace.Writeback {
			c.flags[i] |= frameDirty
		}
		c.policy.Hit(set, w, a)
		return Result{Hit: true, Set: set, Way: w, ReadyAt: c.readyAts[i]}
	}

	// Miss.
	c.Stats.Misses++
	if demand {
		c.Stats.DemandMisses++
	} else if a.Type == trace.Prefetch {
		c.Stats.PrefetchMisses++
	}

	// Writebacks update-if-present but do not allocate: a dirty victim
	// from the level above that misses here is sent on toward memory.
	// This keeps the demand/prefetch reference stream at this level
	// independent of replacement decisions made here (see DESIGN.md).
	if a.Type == trace.Writeback {
		return Result{Hit: false, Bypassed: true, Set: set}
	}

	return c.fill(set, blockAddr, a)
}

// fill installs blockAddr into set, choosing a victim as needed.
func (c *Cache) fill(set int, blockAddr uint64, a Access) Result {
	base := set * c.ways

	// Prefer an invalid frame.
	way := -1
	for w := 0; w < c.ways; w++ {
		if c.flags[base+w]&frameValid == 0 {
			way = w
			break
		}
	}

	res := Result{Hit: false, Set: set}
	if way < 0 {
		victim, bypass := c.policy.Victim(set, a)
		if bypass {
			c.Stats.Bypasses++
			res.Bypassed = true
			return res
		}
		if victim < 0 || victim >= c.ways {
			panic(fmt.Sprintf("cache %s: policy %s returned victim way %d of %d",
				c.name, c.policy.Name(), victim, c.ways))
		}
		way = victim
		i := base + way
		c.Stats.Evictions++
		if c.flags[i]&frameDirty != 0 {
			c.Stats.Writebacks++
			res.EvictedDirty = true
		}
		res.EvictedValid = true
		res.EvictedAddr = c.addrs[i]
		c.policy.Evict(set, way, c.addrs[i])
	}

	i := base + way
	c.addrs[i] = blockAddr
	c.readyAts[i] = a.Now
	fl := frameValid
	if a.Type == trace.Store {
		fl |= frameDirty
	}
	if a.Type == trace.Prefetch {
		fl |= framePrefetched
		c.Stats.PrefetchFills++
	}
	c.flags[i] = fl
	res.Way = way
	c.policy.Fill(set, way, a)
	return res
}

// Invalidate removes a block if present, returning whether it was present
// and dirty. The policy's Evict hook is notified.
func (c *Cache) Invalidate(blockAddr uint64) (present, dirty bool) {
	set, way := c.Lookup(blockAddr)
	if way >= 0 {
		i := set*c.ways + way
		present, dirty = true, c.flags[i]&frameDirty != 0
		c.policy.Evict(set, way, c.addrs[i])
		c.addrs[i] = noBlock
		c.flags[i] = 0
	}
	if c.obs != nil {
		c.obs.OnInvalidate(blockAddr, present)
	}
	return present, dirty
}

// DumpSet renders the frames of one set for divergence diagnostics.
func (c *Cache) DumpSet(set int) string {
	base := set * c.ways
	s := fmt.Sprintf("%s set %d:", c.name, set)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.flags[i]&frameValid == 0 {
			s += fmt.Sprintf(" [%d: -]", w)
			continue
		}
		flags := ""
		if c.flags[i]&frameDirty != 0 {
			flags += "D"
		}
		if c.flags[i]&framePrefetched != 0 {
			flags += "P"
		}
		s += fmt.Sprintf(" [%d: %#x %s]", w, c.addrs[i], flags)
	}
	return s
}

// assertSetWellFormed panics if a set holds two valid frames with the same
// block address, or an invalid frame whose tag lane is not the noBlock
// sentinel (which would let a stale tag match). Compiled in only under the
// verify build tag.
func (c *Cache) assertSetWellFormed(set int) {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.flags[base+w]&frameValid == 0 {
			if c.addrs[base+w] != noBlock {
				panic(fmt.Sprintf("cache %s: invalid frame %d of set %d holds tag %#x instead of the empty sentinel",
					c.name, w, set, c.addrs[base+w]))
			}
			continue
		}
		for w2 := w + 1; w2 < c.ways; w2++ {
			if c.flags[base+w2]&frameValid != 0 && c.addrs[base+w2] == c.addrs[base+w] {
				panic(fmt.Sprintf("cache %s: duplicate block %#x in ways %d and %d of %s",
					c.name, c.addrs[base+w], w, w2, c.DumpSet(set)))
			}
		}
	}
}

// SetReadyAt records the cycle at which the data for the block in
// (set, way) arrives; accesses before then pay the remaining latency.
func (c *Cache) SetReadyAt(set, way int, cycle uint64) { c.readyAts[set*c.ways+way] = cycle }

// ReadyAt returns the data-arrival cycle for (set, way).
func (c *Cache) ReadyAt(set, way int) uint64 { return c.readyAts[set*c.ways+way] }

// Reset invalidates all blocks and zeroes statistics. The replacement
// policy's state is not reset; construct a fresh policy for a fresh cache.
func (c *Cache) Reset() {
	for i := range c.addrs {
		c.addrs[i] = noBlock
		c.readyAts[i] = 0
		c.flags[i] = 0
	}
	c.Stats = Stats{}
}

// ResetStats zeroes the statistics counters, e.g. at the end of warmup.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
