package experiments

import (
	"sort"

	"mpppb/internal/parallel"
	"mpppb/internal/sim"
	"mpppb/internal/stats"
	"mpppb/internal/workload"
)

// SingleThreadTable holds the data behind Figures 6 (speedup over LRU) and
// 7 (MPKI) for the single-thread suite. Per-benchmark numbers aggregate the
// benchmark's segments with their simpoint-style weights
// (workload.SegmentWeights), as in Section 4.2.
type SingleThreadTable struct {
	// Policies lists the realistic policies (lru and min are implicit).
	Policies []string
	// Benchmarks in suite order.
	Benchmarks []string
	// IPC[policy][bench]; includes "lru" and "min" entries.
	IPC map[string]map[string]float64
	// Speedup[policy][bench] is IPC relative to LRU.
	Speedup map[string]map[string]float64
	// MPKI[policy][bench]; includes "lru" and "min".
	MPKI map[string]map[string]float64
	// GeomeanSpeedup[policy] across benchmarks; includes "min".
	GeomeanSpeedup map[string]float64
	// MeanMPKI[policy] arithmetic mean across benchmarks.
	MeanMPKI map[string]float64
	// BestCount[policy] counts benchmarks where the policy had the best
	// speedup among the realistic policies (Section 6.2.1's "22 out of 33").
	BestCount map[string]int
}

// AllSingleThreadPolicies returns the policy column order including the
// implicit entries.
func (t *SingleThreadTable) AllSingleThreadPolicies() []string {
	return append(append([]string{"lru"}, t.Policies...), "min")
}

// SingleThread runs the single-thread evaluation: every benchmark segment
// under LRU, MIN, and the given policies. Segments are independent, so
// they fan across the worker pool (parallel.Default, the cmd tools' -j);
// per-segment results merge back in suite order, making the table
// byte-identical at any worker count.
func SingleThread(cfg sim.Config, policies []string, benches []string, progress Progress) *SingleThreadTable {
	if benches == nil {
		benches = workload.Benchmarks()
	}
	t := &SingleThreadTable{
		Policies:       policies,
		Benchmarks:     benches,
		IPC:            map[string]map[string]float64{},
		Speedup:        map[string]map[string]float64{},
		MPKI:           map[string]map[string]float64{},
		GeomeanSpeedup: map[string]float64{},
		MeanMPKI:       map[string]float64{},
		BestCount:      map[string]int{},
	}
	all := t.AllSingleThreadPolicies()
	for _, p := range all {
		t.IPC[p] = map[string]float64{}
		t.Speedup[p] = map[string]float64{}
		t.MPKI[p] = map[string]float64{}
	}

	// One unit of work per (benchmark, segment): all policies on that
	// segment, sharing the segment's generator as the serial code did.
	type segRun struct {
		ipc  map[string]float64
		mpki map[string]float64
	}
	ids := make([]workload.SegmentID, 0, len(benches)*workload.SegmentsPerBenchmark)
	for _, bench := range benches {
		for seg := 0; seg < workload.SegmentsPerBenchmark; seg++ {
			ids = append(ids, workload.SegmentID{Bench: bench, Seg: seg})
		}
	}
	trk := progress.tracker(len(ids))
	runs, err := parallel.Map(0, len(ids), func(i int) (segRun, error) {
		id := ids[i]
		r := segRun{ipc: map[string]float64{}, mpki: map[string]float64{}}
		gen := workload.NewGenerator(id, workload.CoreBase(0))
		lruRes, minRes := sim.RunSingleMIN(cfg, gen)
		r.ipc["lru"], r.mpki["lru"] = lruRes.IPC, lruRes.MPKI
		r.ipc["min"], r.mpki["min"] = minRes.IPC, minRes.MPKI
		for _, p := range policies {
			res := sim.RunSingle(cfg, gen, mustPolicy(p))
			r.ipc[p], r.mpki[p] = res.IPC, res.MPKI
		}
		trk.step("single-thread %s", id)
		return r, nil
	})
	mergeErr(err)

	// Merge in suite order: aggregation below consumes per-segment values
	// in exactly the sequence the serial loop produced them.
	segWeights := workload.SegmentWeights()
	for bi, bench := range benches {
		ipcs := map[string][]float64{}
		mpkis := map[string][]float64{}
		for seg := 0; seg < workload.SegmentsPerBenchmark; seg++ {
			r := runs[bi*workload.SegmentsPerBenchmark+seg]
			for _, p := range all {
				ipcs[p] = append(ipcs[p], r.ipc[p])
				mpkis[p] = append(mpkis[p], r.mpki[p])
			}
		}
		for _, p := range all {
			t.IPC[p][bench] = stats.WeightedMean(ipcs[p], segWeights[:])
			t.MPKI[p][bench] = stats.WeightedMean(mpkis[p], segWeights[:])
			t.Speedup[p][bench] = t.IPC[p][bench] / t.IPC["lru"][bench]
		}
		// Track which realistic policy wins this benchmark.
		best, bestV := "", 0.0
		for _, p := range policies {
			if t.Speedup[p][bench] > bestV {
				best, bestV = p, t.Speedup[p][bench]
			}
		}
		if best != "" {
			t.BestCount[best]++
		}
	}

	for _, p := range all {
		var sp, mp []float64
		for _, b := range benches {
			sp = append(sp, t.Speedup[p][b])
			mp = append(mp, t.MPKI[p][b])
		}
		t.GeomeanSpeedup[p] = stats.GeoMean(sp)
		t.MeanMPKI[p] = stats.Mean(mp)
	}
	return t
}

// BenchmarksBySpeedup returns the benchmarks sorted ascending by a policy's
// speedup, the x-axis ordering of Figure 6.
func (t *SingleThreadTable) BenchmarksBySpeedup(policy string) []string {
	out := make([]string, len(t.Benchmarks))
	copy(out, t.Benchmarks)
	sort.Slice(out, func(i, j int) bool {
		return t.Speedup[policy][out[i]] < t.Speedup[policy][out[j]]
	})
	return out
}
