package policy

import "testing"

// TestDuelLeadersProperties pins the layout guarantees every dueler
// depends on, across the supported geometry range: candidate groups are
// equally sized (no candidate gets a vote advantage), kinds are in
// range, at least half the sets are followers (the duel must not govern
// more of the cache than it samples), and geometries too small to host
// one full group duel nothing at all rather than dueling unevenly.
func TestDuelLeadersProperties(t *testing.T) {
	for _, sets := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 100, 128, 256, 1000, 1024, 2048, 4096} {
		for _, n := range []int{1, 2, 3, 4, 8} {
			for _, maxGroups := range []int{1, 4, 32, 64} {
				kind := DuelLeaders(sets, n, maxGroups)
				if len(kind) != sets {
					t.Fatalf("sets=%d n=%d max=%d: len %d", sets, n, maxGroups, len(kind))
				}
				counts := make([]int, n)
				followers := 0
				for s, k := range kind {
					switch {
					case k == -1:
						followers++
					case int(k) >= 0 && int(k) < n:
						counts[k]++
					default:
						t.Fatalf("sets=%d n=%d max=%d: set %d has kind %d out of range", sets, n, maxGroups, s, k)
					}
				}
				if sets < 2*n {
					if followers != sets {
						t.Fatalf("sets=%d n=%d max=%d: no-duel geometry has %d leaders", sets, n, maxGroups, sets-followers)
					}
					continue
				}
				g := sets / (2 * n)
				if g > maxGroups {
					g = maxGroups
				}
				for c, got := range counts {
					if got != g {
						t.Fatalf("sets=%d n=%d max=%d: candidate %d has %d leaders, want %d (counts %v)",
							sets, n, maxGroups, c, got, g, counts)
					}
				}
				if followers < sets/2 {
					t.Fatalf("sets=%d n=%d max=%d: only %d/%d followers", sets, n, maxGroups, followers, sets)
				}
			}
		}
	}
}

// TestLeaderKindsBothKindsEqual pins the two-way complement-select
// layout: both kinds exist with equal counts (min(32, sets/2) each) and
// every other set follows, at every geometry down to the 2-set minimum.
func TestLeaderKindsBothKindsEqual(t *testing.T) {
	for _, sets := range []int{2, 4, 8, 16, 64, 100, 128, 1024, 2048} {
		kinds := LeaderKinds(sets)
		counts := map[uint8]int{}
		for _, k := range kinds {
			counts[k]++
		}
		want := 32
		if sets/2 < want {
			want = sets / 2
		}
		if counts[0] != want || counts[1] != want {
			t.Fatalf("sets=%d: leader counts %v, want %d each", sets, counts, want)
		}
		if counts[0]+counts[1]+counts[2] != sets {
			t.Fatalf("sets=%d: kinds don't partition the sets: %v", sets, counts)
		}
	}
}

// Regression test for the DIP leader audit: the old modulo layout
// (set%stride selecting leaders) assigned the two policies unequal
// leader counts whenever 32 did not divide the set count, biasing the
// duel toward LRU. The complement-select layout must give both policies
// identical representation at every geometry.
func TestDIPLeaderCountsEqual(t *testing.T) {
	for _, sets := range []int{4, 8, 12, 48, 100, 384, 1000, 2048} {
		d := NewDIP(sets, 8, 1)
		counts := map[int]int{}
		for s := 0; s < sets; s++ {
			counts[d.leaderKind(s)]++
		}
		if counts[0] != counts[1] || counts[0] == 0 {
			t.Fatalf("sets=%d: unequal leader counts %v", sets, counts)
		}
	}
}

// Regression test for the DIP PSEL audit: the counter must saturate at
// ±pselMax, not wrap — a wrapped PSEL flips the follower policy at the
// exact moment the evidence for the incumbent is strongest.
func TestDIPPSELSaturates(t *testing.T) {
	d := NewDIP(1024, 8, 1)
	lruLeader, bipLeader := -1, -1
	for s := 0; s < 1024 && (lruLeader < 0 || bipLeader < 0); s++ {
		switch d.leaderKind(s) {
		case 0:
			if lruLeader < 0 {
				lruLeader = s
			}
		case 1:
			if bipLeader < 0 {
				bipLeader = s
			}
		}
	}
	for i := 0; i < 2*d.pselMax+10; i++ {
		d.Fill(lruLeader, 0, noAccess)
		if d.psel < -d.pselMax {
			t.Fatalf("PSEL wrapped below -%d: %d", d.pselMax, d.psel)
		}
	}
	if d.psel != -d.pselMax {
		t.Fatalf("PSEL did not saturate at -%d: %d", d.pselMax, d.psel)
	}
	for i := 0; i < 4*d.pselMax+10; i++ {
		d.Fill(bipLeader, 0, noAccess)
		if d.psel > d.pselMax {
			t.Fatalf("PSEL wrapped above %d: %d", d.pselMax, d.psel)
		}
	}
	if d.psel != d.pselMax {
		t.Fatalf("PSEL did not saturate at %d: %d", d.pselMax, d.psel)
	}
}

// Regression test for the DynMDPP leader audit: the old modulo layout
// left some candidates with no leader sets at small geometries, so their
// miss counters stayed at zero and they won the duel without ever being
// evaluated. Every candidate must own at least one (equally sized)
// leader group at every geometry large enough to duel.
func TestDynMDPPEveryCandidateHasLeaders(t *testing.T) {
	for _, sets := range []int{8, 12, 16, 24, 48, 64, 100, 256, 2048} {
		d := NewDynMDPP(sets, 16)
		counts := make([]int, len(d.candidates))
		followers := 0
		for s := 0; s < sets; s++ {
			if l := d.leader(s); l >= 0 {
				counts[l]++
			} else {
				followers++
			}
		}
		for c, got := range counts {
			if got == 0 {
				t.Fatalf("sets=%d: candidate %d has no leaders (%v)", sets, c, counts)
			}
			if got != counts[0] {
				t.Fatalf("sets=%d: unequal leader counts %v", sets, counts)
			}
		}
		if followers < sets/2 {
			t.Fatalf("sets=%d: only %d followers", sets, followers)
		}
	}
}

// TestDynMDPPTinyGeometryFollowsDefault: below the one-group-per-
// candidate minimum the duel disables itself — every set is a follower
// and positionsFor falls back to best() over untouched (all-zero)
// counters, i.e. candidate 0, the classic-PLRU default. That beats the
// old behavior of dueling with missing candidates.
func TestDynMDPPTinyGeometryFollowsDefault(t *testing.T) {
	d := NewDynMDPP(4, 16) // 4 sets < 2*4 candidates: no duel possible
	for s := 0; s < 4; s++ {
		if d.leader(s) != -1 {
			t.Fatalf("set %d is a leader in a no-duel geometry", s)
		}
		if got := d.positionsFor(s); got != d.candidates[0] {
			t.Fatalf("set %d follows %v, want default %v", s, got, d.candidates[0])
		}
	}
}
