package policy

import (
	"testing"
	"testing/quick"

	"mpppb/internal/cache"
)

var noAccess = cache.Access{}

func TestLRUInitialRanksWellFormed(t *testing.T) {
	l := NewLRU(4, 8)
	for s := 0; s < 4; s++ {
		seen := make([]bool, 8)
		for w := 0; w < 8; w++ {
			r := l.Rank(s, w)
			if r < 0 || r >= 8 || seen[r] {
				t.Fatalf("set %d: bad initial rank %d for way %d", s, r, w)
			}
			seen[r] = true
		}
	}
}

func TestLRUHitPromotes(t *testing.T) {
	l := NewLRU(1, 4)
	l.Hit(0, 3, noAccess)
	if l.Rank(0, 3) != 0 {
		t.Fatalf("hit way rank = %d, want 0", l.Rank(0, 3))
	}
	// Ranks remain a permutation.
	seen := make([]bool, 4)
	for w := 0; w < 4; w++ {
		seen[l.Rank(0, w)] = true
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d missing after promotion", r)
		}
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	l := NewLRU(1, 4)
	order := []int{2, 0, 3, 1} // touch in this order: way 2 is LRU at the end
	for _, w := range order {
		l.Hit(0, w, noAccess)
	}
	v, bypass := l.Victim(0, noAccess)
	if bypass || v != 2 {
		t.Fatalf("victim = %d (bypass=%v), want 2", v, bypass)
	}
}

func TestLRURanksStayPermutation(t *testing.T) {
	if err := quick.Check(func(touches []uint8) bool {
		l := NewLRU(2, 8)
		for _, tc := range touches {
			set := int(tc>>7) & 1
			way := int(tc) % 8
			if tc%3 == 0 {
				l.Fill(set, way, noAccess)
			} else {
				l.Hit(set, way, noAccess)
			}
		}
		for s := 0; s < 2; s++ {
			seen := make([]bool, 8)
			for w := 0; w < 8; w++ {
				r := l.Rank(s, w)
				if r < 0 || r >= 8 || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomVictimInRange(t *testing.T) {
	r := NewRandom(8, 1)
	for i := 0; i < 1000; i++ {
		v, bypass := r.Victim(0, noAccess)
		if bypass || v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestTreePLRUVictimAvoidsRecentlyTouched(t *testing.T) {
	p := NewTreePLRU(1, 8)
	// Touch everything, then the victim must not be the most recent.
	for w := 0; w < 8; w++ {
		p.Hit(0, w, noAccess)
	}
	v, _ := p.Victim(0, noAccess)
	if v == 7 {
		t.Fatal("victim is the most recently touched way")
	}
}

func TestTreePLRUSingleTouchProtects(t *testing.T) {
	for w := 0; w < 8; w++ {
		p := NewTreePLRU(1, 8)
		p.Hit(0, w, noAccess)
		if v, _ := p.Victim(0, noAccess); v == w {
			t.Fatalf("way %d victimized immediately after touch", w)
		}
	}
}

func TestTreePLRUCyclicFairness(t *testing.T) {
	// Repeatedly evicting and refilling must cycle through all ways rather
	// than stick on a few.
	p := NewTreePLRU(1, 8)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		v, _ := p.Victim(0, noAccess)
		seen[v] = true
		p.Fill(0, v, noAccess)
	}
	if len(seen) != 8 {
		t.Fatalf("eviction cycle covered %d of 8 ways", len(seen))
	}
}

func TestTreePLRUGeometryValidation(t *testing.T) {
	for _, ways := range []int{3, 0, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTreePLRU with %d ways did not panic", ways)
				}
			}()
			NewTreePLRU(1, ways)
		}()
	}
}

func TestSRRIPInsertionAndPromotion(t *testing.T) {
	s := NewSRRIP(1, 4)
	s.Fill(0, 0, noAccess)
	if got := s.RRPV(0, 0); got != RRPVLong {
		t.Fatalf("insert RRPV = %d, want %d", got, RRPVLong)
	}
	s.Hit(0, 0, noAccess)
	if got := s.RRPV(0, 0); got != RRPVImmediate {
		t.Fatalf("hit RRPV = %d, want 0", got)
	}
}

func TestSRRIPVictimPrefersDistant(t *testing.T) {
	s := NewSRRIP(1, 4)
	for w := 0; w < 4; w++ {
		s.Fill(0, w, noAccess)
	}
	s.SetRRPV(0, 2, RRPVMax)
	v, bypass := s.Victim(0, noAccess)
	if bypass || v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestSRRIPAgingConverges(t *testing.T) {
	s := NewSRRIP(1, 4)
	for w := 0; w < 4; w++ {
		s.Fill(0, w, noAccess)
		s.Hit(0, w, noAccess) // all at RRPV 0
	}
	v, _ := s.Victim(0, noAccess)
	if v != 0 {
		t.Fatalf("aged victim = %d, want first way", v)
	}
	// Aging must have advanced everyone to RRPVMax.
	for w := 0; w < 4; w++ {
		if s.RRPV(0, w) != RRPVMax {
			t.Fatalf("way %d RRPV %d after aging", w, s.RRPV(0, w))
		}
	}
}

func TestDRRIPLeaderAssignment(t *testing.T) {
	d := NewDRRIP(2048, 16, 1)
	kinds := map[int]int{}
	for s := 0; s < 2048; s++ {
		kinds[d.leaderKind(s)]++
	}
	if kinds[0] != drripLeaders || kinds[1] != drripLeaders {
		t.Fatalf("leader counts: %v", kinds)
	}
	if kinds[2] != 2048-2*drripLeaders {
		t.Fatalf("follower count: %v", kinds)
	}
}

func TestDRRIPDuel(t *testing.T) {
	d := NewDRRIP(64, 4, 1)
	// Misses in SRRIP leader sets push PSEL toward BRRIP and vice versa.
	before := d.psel
	d.Fill(0, 0, noAccess) // set 0 is an SRRIP leader (stride 2, set%2==0)
	if d.psel >= before {
		t.Fatal("SRRIP-leader miss did not decrement PSEL")
	}
	before = d.psel
	d.Fill(1, 0, noAccess) // BRRIP leader
	if d.psel <= before {
		t.Fatal("BRRIP-leader miss did not increment PSEL")
	}
}

func TestDRRIPLeaderAssignmentSmallCaches(t *testing.T) {
	// Regression: the old stride arithmetic degenerated for sets below
	// drripLeaders (stride clamped to 1 made every set an SRRIP leader, so
	// PSEL only ever decremented) and for sets == 2*drripLeaders (no
	// followers was fine, but any non-multiple miscounted). Every set count
	// >= 2 must get exactly min(drripLeaders, sets/2) leaders per policy.
	for _, sets := range []int{2, 4, 8, 16, 48, 64, 80, 1024, 2048} {
		d := NewDRRIP(sets, 4, 1)
		kinds := map[int]int{}
		for s := 0; s < sets; s++ {
			kinds[d.leaderKind(s)]++
		}
		want := drripLeaders
		if sets/2 < want {
			want = sets / 2
		}
		if kinds[0] != want || kinds[1] != want {
			t.Fatalf("sets=%d: leader counts %v, want %d per policy", sets, kinds, want)
		}
		if kinds[2] != sets-2*want {
			t.Fatalf("sets=%d: follower count %v", sets, kinds)
		}
	}
}

func TestDRRIPSmallCachePSELMovesBothWays(t *testing.T) {
	// On a 4-set cache both leader kinds must exist so the duel can move
	// PSEL in both directions (the old code had only SRRIP leaders here).
	d := NewDRRIP(4, 4, 1)
	srrip, brrip := -1, -1
	for s := 0; s < 4; s++ {
		switch d.leaderKind(s) {
		case 0:
			srrip = s
		case 1:
			brrip = s
		}
	}
	if srrip < 0 || brrip < 0 {
		t.Fatalf("missing leader kinds on 4 sets (srrip=%d brrip=%d)", srrip, brrip)
	}
	before := d.psel
	d.Fill(srrip, 0, noAccess)
	if d.psel >= before {
		t.Fatal("SRRIP-leader miss did not decrement PSEL")
	}
	before = d.psel
	d.Fill(brrip, 0, noAccess)
	if d.psel <= before {
		t.Fatal("BRRIP-leader miss did not increment PSEL")
	}
}

func TestDRRIPVictimTerminates(t *testing.T) {
	d := NewDRRIP(4, 4, 1)
	for w := 0; w < 4; w++ {
		d.Fill(2, w, noAccess)
		d.Hit(2, w, noAccess)
	}
	v, bypass := d.Victim(2, noAccess)
	if bypass || v < 0 || v >= 4 {
		t.Fatalf("victim = %d", v)
	}
}

func TestMDPPPositionZeroActsLikeFullPromotion(t *testing.T) {
	m := NewMDPP(1, 16)
	plru := NewTreePLRU(1, 16)
	// Promoting to position 0 must equal classic PLRU touch: same victims.
	seq := []int{3, 7, 1, 15, 8, 0, 12, 7, 3}
	for _, w := range seq {
		m.PromoteAt(0, w, 0)
		plru.Hit(0, w, noAccess)
	}
	mv, _ := m.Victim(0, noAccess)
	pv, _ := plru.Victim(0, noAccess)
	if mv != pv {
		t.Fatalf("MDPP pos-0 victim %d != PLRU victim %d", mv, pv)
	}
}

func TestMDPPPositionLastLeavesTreeUntouched(t *testing.T) {
	m := NewMDPP(1, 16)
	v0, _ := m.Victim(0, noAccess)
	m.PlaceAt(0, (v0+1)%16, 15) // least-protected placement changes nothing
	v1, _ := m.Victim(0, noAccess)
	if v0 != v1 {
		t.Fatalf("position-15 placement disturbed the tree: %d -> %d", v0, v1)
	}
}

func TestMDPPRootBitDominates(t *testing.T) {
	m := NewMDPP(1, 16)
	// Position 7 (mask 1000b inverted = only root) points the root away;
	// the next victim must come from the other half of the set.
	m.PlaceAt(0, 0, 7)
	v, _ := m.Victim(0, noAccess)
	if v < 8 {
		t.Fatalf("root-away placement for way 0 still victimizes same half (way %d)", v)
	}
}

func TestMDPPDefaultRoundTrip(t *testing.T) {
	m := NewMDPP(2, 16)
	if m.Positions() != 16 {
		t.Fatalf("Positions = %d", m.Positions())
	}
	// As a plain policy it must behave sanely: fills and hits never panic
	// and victims stay in range.
	for i := 0; i < 200; i++ {
		w := i % 16
		m.Fill(1, w, noAccess)
		if i%3 == 0 {
			m.Hit(1, w, noAccess)
		}
		v, bypass := m.Victim(1, noAccess)
		if bypass || v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestMDPPProtectionOrdering(t *testing.T) {
	// A block placed at a more protected position should survive at least
	// as long as one placed less protected, measured by evictions under
	// adversarial touches.
	survival := func(pos int) int {
		m := NewMDPP(1, 16)
		m.PlaceAt(0, 5, pos)
		count := 0
		for i := 0; ; i++ {
			v, _ := m.Victim(0, noAccess)
			if v == 5 || count > 100 {
				return count
			}
			m.Fill(0, v, noAccess) // adversary fills the victim frame
			count++
		}
	}
	if survival(0) < survival(15) {
		t.Fatalf("position 0 (%d evictions) less protected than 15 (%d)", survival(0), survival(15))
	}
}

func TestBIPInsertsMostlyAtLRU(t *testing.T) {
	b := NewBIP(1, 8, 1)
	lruCount := 0
	for i := 0; i < 1000; i++ {
		b.Fill(0, 3, noAccess)
		if b.lru.Rank(0, 3) == 7 {
			lruCount++
		}
	}
	if lruCount < 900 {
		t.Fatalf("only %d/1000 fills at LRU position", lruCount)
	}
	if lruCount == 1000 {
		t.Fatal("no MRU insertions at all (epsilon path dead)")
	}
}

func TestDIPDuelsAndFollows(t *testing.T) {
	d := NewDIP(1024, 8, 1)
	// Leaders must exist alongside followers.
	kinds := map[int]int{}
	for set := 0; set < 1024; set++ {
		kinds[d.leaderKind(set)]++
	}
	if kinds[0] == 0 || kinds[1] == 0 || kinds[2] == 0 {
		t.Fatalf("leader/follower split broken: %v", kinds)
	}
	// LRU leader misses push PSEL toward BIP.
	before := d.psel
	d.Fill(0, 0, noAccess) // set 0: LRU leader
	if d.psel >= before {
		t.Fatal("LRU-leader fill did not vote against LRU")
	}
	bipLeader := 0
	for d.leaderKind(bipLeader) != 1 {
		bipLeader++
	}
	before = d.psel
	d.Fill(bipLeader, 0, noAccess)
	if d.psel <= before {
		t.Fatal("BIP-leader fill did not vote against BIP")
	}
	// Follower obeys PSEL: with strongly positive PSEL, inserts at MRU.
	d.psel = d.pselMax
	follower := 1
	for d.leaderKind(follower) != 2 {
		follower++
	}
	d.Fill(follower, 2, noAccess)
	if d.lru.Rank(follower, 2) != 0 {
		t.Fatal("follower ignored LRU-winning PSEL")
	}
}

func TestBIPBeatsLRUOnThrash(t *testing.T) {
	// Cyclic access over ways+1 blocks per set: LRU thrashes, bimodal
	// insertion keeps most of the set resident.
	countMisses := func(pol cache.ReplacementPolicy) int {
		misses := 0
		present := map[uint64]int{} // block -> way
		frames := map[int]uint64{}  // way -> block
		for round := 0; round < 400; round++ {
			for b := uint64(0); b < 9; b++ {
				if w, ok := present[b]; ok {
					pol.Hit(0, w, noAccess)
					continue
				}
				misses++
				w := len(frames)
				if w >= 8 {
					var bypass bool
					w, bypass = pol.Victim(0, noAccess)
					if bypass {
						continue
					}
					delete(present, frames[w])
				}
				frames[w] = b
				present[b] = w
				pol.Fill(0, w, noAccess)
			}
		}
		return misses
	}
	lruMisses := countMisses(NewLRU(1, 8))
	bipMisses := countMisses(NewBIP(1, 8, 7))
	if bipMisses >= lruMisses {
		t.Fatalf("BIP misses %d >= LRU %d on cyclic thrash", bipMisses, lruMisses)
	}
}

func TestDynMDPPLeadersAndDuel(t *testing.T) {
	d := NewDynMDPP(2048, 16)
	counts := map[int]int{}
	for s := 0; s < 2048; s++ {
		counts[d.leader(s)]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] == 0 {
			t.Fatalf("candidate %d has no leader sets: %v", c, counts)
		}
	}
	if counts[-1] == 0 {
		t.Fatal("no follower sets")
	}
	// Misses in candidate 0's leaders make another candidate best.
	for i := 0; i < 100; i++ {
		d.Fill(0, i%16, noAccess) // set 0 leads candidate 0
	}
	if d.best() == 0 {
		t.Fatal("candidate 0 still best despite leader misses")
	}
}

func TestDynMDPPDecay(t *testing.T) {
	d := NewDynMDPP(64, 16)
	d.misses[2] = 1000
	d.decayPeriod = 4
	for i := 0; i < 4; i++ {
		follower := 0
		for d.leader(follower) != -1 {
			follower++
		}
		d.Fill(follower, 0, noAccess)
	}
	if d.misses[2] >= 1000 {
		t.Fatalf("miss counters did not decay: %d", d.misses[2])
	}
}

func TestDynMDPPVictimInRange(t *testing.T) {
	d := NewDynMDPP(16, 16)
	for i := 0; i < 500; i++ {
		d.Fill(i%16, i%16, noAccess)
		if i%3 == 0 {
			d.Hit(i%16, (i*7)%16, noAccess)
		}
		v, bypass := d.Victim(i%16, noAccess)
		if bypass || v < 0 || v >= 16 {
			t.Fatalf("victim %d", v)
		}
	}
}
