package trace

import "testing"

func TestAccessTypeStrings(t *testing.T) {
	cases := map[AccessType]string{
		Load:           "load",
		Store:          "store",
		Prefetch:       "prefetch",
		Writeback:      "writeback",
		AccessType(99): "unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestBlockGeometry(t *testing.T) {
	if BlockSize != 64 {
		t.Fatalf("BlockSize = %d, want 64 (paper's methodology)", BlockSize)
	}
	if 1<<BlockBits != BlockSize {
		t.Fatal("BlockBits inconsistent with BlockSize")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{PC: 0x400, Addr: 0x12345, NonMem: 3}
	if r.Instructions() != 4 {
		t.Fatalf("Instructions = %d, want 4", r.Instructions())
	}
	if r.Block() != 0x12345>>BlockBits {
		t.Fatalf("Block = %#x", r.Block())
	}
	zero := Record{}
	if zero.Instructions() != 1 {
		t.Fatal("a bare memory instruction counts as 1")
	}
}

func TestPrefetchPCIsDistinctive(t *testing.T) {
	// The fake PC must not collide with plausible code addresses (low
	// canonical user-space range).
	if PrefetchPC < 1<<48 {
		t.Fatalf("PrefetchPC %#x could alias a real PC", PrefetchPC)
	}
}
