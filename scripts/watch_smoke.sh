#!/bin/sh
# Live-observability smoke test against the real binary: start a small
# fig6 campaign with -listen on an ephemeral-ish port, poll /metrics and
# /status while it runs, and require (a) well-formed output from both
# endpoints, (b) a clean exit, and (c) a TSV byte-identical to a run
# without observability. The Go tests pin the library-level semantics;
# this script checks the end-to-end flow — flag plumbing, the HTTP
# server's lifetime, stdout purity — the way a user would hit it.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

BIN="$tmp/mpppb-experiments"
go build -o "$BIN" ./cmd/mpppb-experiments

PORT=${WATCH_SMOKE_PORT:-19384}
ADDR="127.0.0.1:$PORT"
ARGS="-id fig6 -benches sphinx3_like,gcc_like -st-policies sdbp,mpppb \
      -warmup 150000 -measure 500000 -q"

echo "== reference run (no observability)"
$BIN $ARGS > "$tmp/ref.tsv"

echo "== observed run (-listen $ADDR, polled mid-run)"
$BIN $ARGS -listen "$ADDR" > "$tmp/obs.tsv" 2> "$tmp/obs.err" &
pid=$!

# Poll until the server answers (the run needs a moment to bind), then
# capture both endpoints while cells are still computing.
tries=0
until curl -fsS "http://$ADDR/metrics" > "$tmp/metrics.txt" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
        echo "no /metrics response after 5s" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/status" > "$tmp/status.json"
wait "$pid"

echo "== checking /metrics shape"
grep -q '^# TYPE mpppb_parallel_tasks_started_total counter$' "$tmp/metrics.txt"
grep -q '^# TYPE mpppb_experiments_cell_seconds histogram$' "$tmp/metrics.txt"
grep -q '^mpppb_experiments_cell_seconds_bucket{le="+Inf"}' "$tmp/metrics.txt"

echo "== checking /status shape"
grep -q '"tool": "mpppb-experiments"' "$tmp/status.json"
grep -q '"total_cells"' "$tmp/status.json"
# Valid JSON (python3 is on every CI image; skip quietly if absent).
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$tmp/status.json"
fi

echo "== checking the server announced itself and died with the run"
grep -q "obs: serving /metrics /status /debug/pprof on http://$ADDR" "$tmp/obs.err"
if curl -fsS --max-time 2 "http://$ADDR/metrics" >/dev/null 2>&1; then
    echo "observability server still listening after the run exited" >&2
    exit 1
fi

echo "== comparing TSVs"
cmp "$tmp/ref.tsv" "$tmp/obs.tsv"
echo "PASS: live endpoints served mid-run and stdout stayed byte-identical"
