package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// StartProgress emits line() to w every interval until the returned stop
// function is called — the heartbeat for runs without -listen. When w is a
// terminal the line rewrites in place (carriage return + erase-to-end);
// otherwise each tick appends a plain line, safe for log files and CI.
// stop prints one final line (terminated, on a TTY, with a newline so the
// shell prompt doesn't overwrite it) and is idempotent.
func StartProgress(w io.Writer, interval time.Duration, line func() string) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	tty := isTerminal(w)
	emit := func(s string) {
		if s == "" {
			return
		}
		if tty {
			fmt.Fprintf(w, "\r%s\x1b[K", s)
		} else {
			fmt.Fprintf(w, "%s\n", s)
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				emit(line())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			emit(line())
			if tty {
				fmt.Fprintln(w)
			}
		})
	}
}

// isTerminal reports whether w is a character device (a TTY). It only
// recognizes *os.File; anything else — buffers, pipes wrapped in writers —
// is treated as not a terminal, which degrades to plain line output.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
