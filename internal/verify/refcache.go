package verify

import (
	"fmt"
	"sort"
	"strings"

	"mpppb/internal/cache"
	"mpppb/internal/trace"
)

// cacheModel is the naive reference cache: per set, an unordered list of
// resident block addresses. It implements cache.Observer and replays every
// completed operation against its own state, verifying the production
// outcome (hit/miss, fill location, eviction, invalidation) and, every
// sweepEvery events, the full content of the production array.
type cacheModel struct {
	k      *Checker
	c      *cache.Cache
	sets   int
	ways   int
	mask   uint64
	blocks [][]uint64 // per set, resident block addresses (unordered)
}

func newCacheModel(k *Checker, c *cache.Cache) *cacheModel {
	return &cacheModel{
		k:      k,
		c:      c,
		sets:   c.Sets(),
		ways:   c.Ways(),
		mask:   uint64(c.Sets() - 1),
		blocks: make([][]uint64, c.Sets()),
	}
}

// contains returns the index of block in the model set, or -1.
func (m *cacheModel) contains(set int, block uint64) int {
	for i, b := range m.blocks[set] {
		if b == block {
			return i
		}
	}
	return -1
}

// remove deletes the i-th block of a set.
func (m *cacheModel) remove(set, i int) {
	s := m.blocks[set]
	m.blocks[set] = append(s[:i], s[i+1:]...)
}

// dump renders a set in both models for divergence reports.
func (m *cacheModel) dump(set int) string {
	blocks := append([]uint64(nil), m.blocks[set]...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "  reference set %d:", set)
	for _, blk := range blocks {
		fmt.Fprintf(&b, " %#x", blk)
	}
	b.WriteString("\n  production ")
	b.WriteString(m.c.DumpSet(set))
	return b.String()
}

// OnAccess implements cache.Observer: replay one access against the model
// and verify the production result.
func (m *cacheModel) OnAccess(a cache.Access, r cache.Result) {
	block := a.Block()
	set := int(block & m.mask)
	if r.Set != set {
		m.k.failf("", "access %#x: production set %d, reference set %d", a.Addr, r.Set, set)
	}

	present := m.contains(set, block) >= 0
	if r.Hit != present {
		m.k.failf(m.dump(set), "access %#x (%v): production hit=%v, reference hit=%v",
			a.Addr, a.Type, r.Hit, present)
	}

	switch {
	case r.Hit:
		if got, ok := m.c.BlockAddrAt(r.Set, r.Way); !ok || got != block {
			m.k.failf(m.dump(set), "hit of %#x reported in way %d which holds %#x (valid=%v)",
				block, r.Way, got, ok)
		}
	case a.Type == trace.Writeback:
		// Writeback misses never allocate.
		if !r.Bypassed {
			m.k.failf(m.dump(set), "writeback miss of %#x did not report Bypassed", a.Addr)
		}
	case r.Bypassed:
		// Policy bypass: no state change.
	default:
		// Fill. Mirror the eviction, then the insertion.
		if r.EvictedValid {
			i := m.contains(set, r.EvictedAddr)
			if i < 0 {
				m.k.failf(m.dump(set), "fill of %#x evicted %#x which the reference does not hold",
					block, r.EvictedAddr)
			} else {
				m.remove(set, i)
			}
		} else if len(m.blocks[set]) >= m.ways {
			m.k.failf(m.dump(set), "fill of %#x into full set %d evicted nothing", block, set)
		}
		m.blocks[set] = append(m.blocks[set], block)
		if len(m.blocks[set]) > m.ways {
			m.k.failf(m.dump(set), "set %d holds %d blocks, associativity %d",
				set, len(m.blocks[set]), m.ways)
		}
		if got, ok := m.c.BlockAddrAt(r.Set, r.Way); !ok || got != block {
			m.k.failf(m.dump(set), "fill of %#x reported in way %d which holds %#x (valid=%v)",
				block, r.Way, got, ok)
		}
	}

	m.k.events++
	if m.k.events%m.k.sweepEvery == 0 {
		m.k.sweep()
	}
}

// OnInvalidate implements cache.Observer.
func (m *cacheModel) OnInvalidate(blockAddr uint64, present bool) {
	set := int(blockAddr & m.mask)
	i := m.contains(set, blockAddr)
	if (i >= 0) != present {
		m.k.failf(m.dump(set), "invalidate of %#x: production present=%v, reference present=%v",
			blockAddr, present, i >= 0)
	}
	if i >= 0 {
		m.remove(set, i)
	}
	m.k.events++
}

// checkAll compares the full production array against the model: same
// resident blocks in every set, no duplicates.
func (m *cacheModel) checkAll() {
	for set := 0; set < m.sets; set++ {
		var prod []uint64
		for w := 0; w < m.ways; w++ {
			if addr, ok := m.c.BlockAddrAt(set, w); ok {
				prod = append(prod, addr)
			}
		}
		ref := append([]uint64(nil), m.blocks[set]...)
		sort.Slice(prod, func(i, j int) bool { return prod[i] < prod[j] })
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if len(prod) != len(ref) {
			m.k.failf(m.dump(set), "sweep: set %d holds %d blocks, reference %d", set, len(prod), len(ref))
			continue
		}
		for i := range prod {
			if prod[i] != ref[i] {
				m.k.failf(m.dump(set), "sweep: set %d content mismatch", set)
				break
			}
			if i > 0 && prod[i] == prod[i-1] {
				m.k.failf(m.dump(set), "sweep: set %d holds duplicate block %#x", set, prod[i])
				break
			}
		}
	}
}

var _ cache.Observer = (*cacheModel)(nil)
