package workload

import (
	"fmt"

	"mpppb/internal/stats"
	"mpppb/internal/trace"
	"mpppb/internal/xrand"
)

// Weighted-mix open-loop generator family: a benchmark is a set of named
// scripts (each an archetype kernel) with integer weights; every
// transaction draws one script by weight — cumulative-weight binary
// search, the neobench Scripts.Choose scheme — and emits a short burst of
// its records. Arrivals are paced open-loop in simulated time: the mix
// schedules one transaction per arrival interval of instructions and pads
// inter-arrival gaps with non-memory instructions, so the reference rate
// is set by the schedule, not by the "service" each transaction performs.
// This models multi-tenant server nodes where unrelated request types
// interleave in one LLC, a locality regime the SPEC-like core suite does
// not cover.

// Script is one component of a weighted mix.
type Script struct {
	// Name labels the script in latency summaries, e.g. "kv_point".
	Name string
	// Weight is the script's relative draw weight; must be positive.
	Weight int
	// Tx is the number of records one transaction of this script emits.
	Tx int
	// Think is an optional per-script think time: non-memory instructions
	// padded after each of this script's transactions, modelling clients
	// that pace themselves between requests of that type.
	Think int
	// Make builds the script's kernel at a seed and address base.
	Make func(seed, base uint64) *Gen
}

// Scripts is a weighted script set with a precomputed cumulative-weight
// table for O(log n) choice.
type Scripts struct {
	list  []Script
	cum   []uint64 // cum[i] = sum of weights 0..i
	total uint64
}

// NewScripts validates the set and builds the cumulative-weight table. It
// panics on an empty set or a non-positive weight (programming error:
// script sets are static preset definitions).
func NewScripts(list ...Script) Scripts {
	if len(list) == 0 {
		panic("workload: empty script set")
	}
	s := Scripts{list: list, cum: make([]uint64, len(list))}
	for i, sc := range list {
		if sc.Weight <= 0 {
			panic(fmt.Sprintf("workload: script %q has non-positive weight %d", sc.Name, sc.Weight))
		}
		if sc.Tx <= 0 {
			panic(fmt.Sprintf("workload: script %q has non-positive tx length %d", sc.Name, sc.Tx))
		}
		s.total += uint64(sc.Weight)
		s.cum[i] = s.total
	}
	return s
}

// Choose draws one script index with probability proportional to its
// weight: a uniform point in [1, total] located by binary search for the
// first cumulative weight >= point.
func (s *Scripts) Choose(rng *xrand.RNG) int {
	if len(s.list) == 1 {
		return 0
	}
	point := rng.Uint64n(s.total) + 1
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < point {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Names returns the script names in definition order.
func (s *Scripts) Names() []string {
	names := make([]string, len(s.list))
	for i, sc := range s.list {
		names[i] = sc.Name
	}
	return names
}

// Weights returns the script weights in definition order.
func (s *Scripts) Weights() []int {
	ws := make([]int, len(s.list))
	for i, sc := range s.list {
		ws[i] = sc.Weight
	}
	return ws
}

// latencyWindow bounds the per-script latency sample reservoirs: summaries
// cover the most recent transactions of an infinite stream.
const latencyWindow = 1024

// MixGen is the weighted-mix generator. It satisfies trace.BatchGenerator
// through the embedded Gen chassis.
type MixGen struct {
	*Gen
	scripts  Scripts
	interval uint64 // open-loop arrival interval in instructions; 0 = unpaced
	seed     uint64
	parts    []*Gen
	rng      *xrand.RNG

	counts   []uint64 // transactions drawn per script
	arrivals uint64
	instr    uint64      // instructions emitted so far (incl. pacing pads)
	lat      [][]float64 // per-script ring of recent service latencies
	latPos   []int
}

// NewMix builds a weighted-mix generator. Each script's kernel gets a
// distinct sub-seed and a disjoint sub-region of the address base, so
// scripts never alias each other's footprints.
func NewMix(name string, seed, base uint64, interval int, scripts Scripts) *MixGen {
	if interval < 0 {
		panic("workload: negative mix interval")
	}
	g := newGen(name, 0)
	m := &MixGen{
		Gen:      g,
		scripts:  scripts,
		interval: uint64(interval),
		seed:     seed,
		parts:    make([]*Gen, len(scripts.list)),
		rng:      xrand.New(seed),
		counts:   make([]uint64, len(scripts.list)),
		lat:      make([][]float64, len(scripts.list)),
		latPos:   make([]int, len(scripts.list)),
	}
	for i, sc := range scripts.list {
		// Sub-regions are 64GB apart inside the caller's 1TB core region.
		m.parts[i] = sc.Make(seed+uint64(i+1)*0x9e3779b97f4a7c15, base+uint64(i+1)<<36)
	}
	g.step = m.step
	g.reset = m.resetState
	return m
}

// step emits one transaction: a weighted script choice, that script's
// burst of records, then open-loop pacing and think-time padding folded
// into the records' non-memory counts.
func (m *MixGen) step() {
	i := m.scripts.Choose(m.rng)
	m.counts[i]++
	sc := m.scripts.list[i]
	start := len(m.Gen.buf)
	var rec trace.Record
	var service uint64
	for k := 0; k < sc.Tx; k++ {
		m.parts[i].Next(&rec)
		m.Gen.buf = append(m.Gen.buf, rec)
		service += rec.Instructions()
	}
	// Open-loop pacing: this arrival is scheduled at arrivals*interval
	// instructions; if the stream is ahead of the schedule, pad the gap
	// onto the transaction's first record (capped by the NonMem field).
	if m.interval > 0 {
		if target := m.arrivals * m.interval; target > m.instr {
			pad(&m.Gen.buf[start], target-m.instr)
		}
	}
	if sc.Think > 0 {
		pad(&m.Gen.buf[len(m.Gen.buf)-1], uint64(sc.Think))
	}
	m.arrivals++
	for k := start; k < len(m.Gen.buf); k++ {
		m.instr += m.Gen.buf[k].Instructions()
	}
	// Service latency sample: the transaction's own instruction span,
	// excluding pacing pads.
	if len(m.lat[i]) < latencyWindow {
		m.lat[i] = append(m.lat[i], float64(service))
	} else {
		m.lat[i][m.latPos[i]] = float64(service)
		m.latPos[i] = (m.latPos[i] + 1) % latencyWindow
	}
}

// pad adds non-memory instructions to a record, saturating at the NonMem
// field's capacity.
func pad(r *trace.Record, n uint64) {
	if headroom := uint64(65535 - r.NonMem); n > headroom {
		n = headroom
	}
	r.NonMem += uint16(n)
}

func (m *MixGen) resetState() {
	m.rng.Seed(m.seed)
	for i, p := range m.parts {
		p.Reset()
		m.counts[i] = 0
		m.lat[i] = m.lat[i][:0]
		m.latPos[i] = 0
	}
	m.arrivals = 0
	m.instr = 0
}

// Scripts returns the mix's script set.
func (m *MixGen) Scripts() *Scripts { return &m.scripts }

// ScriptCounts returns how many transactions each script has emitted since
// the last Reset, in definition order.
func (m *MixGen) ScriptCounts() []uint64 {
	out := make([]uint64, len(m.counts))
	copy(out, m.counts)
	return out
}

// LatencyQuantile returns the q-quantile of script i's recent service
// latencies (instructions per transaction, excluding pacing pads), or 0
// when the script has not run yet.
func (m *MixGen) LatencyQuantile(i int, q float64) float64 {
	if len(m.lat[i]) == 0 {
		return 0
	}
	return stats.Quantile(m.lat[i], q)
}

// LatencySummary formats per-script p50/p90/p99 service latencies, one
// line per script, for rate reports.
func (m *MixGen) LatencySummary() string {
	out := ""
	for i, sc := range m.scripts.list {
		out += fmt.Sprintf("%s: %d tx, latency p50=%.0f p90=%.0f p99=%.0f instr\n",
			sc.Name, m.counts[i],
			m.LatencyQuantile(i, 0.50), m.LatencyQuantile(i, 0.90), m.LatencyQuantile(i, 0.99))
	}
	return out
}

var _ trace.BatchGenerator = (*MixGen)(nil)

// mixFamily wraps a preset constructor as a registered extension
// benchmark.
func mixFamily(name, class string, mk func(seg int, seed, base uint64) *MixGen) FamilyBenchmark {
	return FamilyBenchmark{Name: name, Class: class, Make: func(seg int, base uint64) trace.Generator {
		m := mk(seg, seedFor(name, seg), base)
		m.Gen.name = segName(name, seg)
		m.Reset()
		return m
	}}
}

// The mix presets. Footprints reuse the archetype kernels at server-ish
// sizes; segments scale footprints with the usual 3/4, 1x, 3/2 phase
// multiplier. Arrival intervals are in instructions per transaction.
func init() {
	// mix_frontend: a web front end — zipf-hot object cache lookups,
	// session-state reads, and a steady log-append stream.
	registerFamily(mixFamily("mix_frontend", "mix web-serving", func(seg int, seed, base uint64) *MixGen {
		return NewMix("", seed, base, 600, NewScripts(
			Script{Name: "obj_cache", Weight: 70, Tx: 6, Make: func(seed, base uint64) *Gen {
				return hashTableKernel("", seed, base, int(scale(seg, 96*1024)), 3, 0.95, 2)
			}},
			Script{Name: "session", Weight: 20, Tx: 4, Make: func(seed, base uint64) *Gen {
				return zipfObjectKernel("", seed, base, int(scale(seg, 32*1024)), 256, []uint64{0, 24, 96}, 0.9, 5*1024, 70, 20, 2)
			}},
			Script{Name: "log_append", Weight: 10, Tx: 8, Think: 200, Make: func(seed, base uint64) *Gen {
				return streamKernel("", seed, base, scale(seg, 8*blocksPerMB), 1, 4, 4, 2)
			}},
		))
	}))
	// mix_oltp: a transactional store — point lookups, index walks, and
	// occasional full-partition scans that thrash the LLC.
	registerFamily(mixFamily("mix_oltp", "mix oltp", func(seg int, seed, base uint64) *MixGen {
		return NewMix("", seed, base, 400, NewScripts(
			Script{Name: "kv_point", Weight: 60, Tx: 4, Make: func(seed, base uint64) *Gen {
				return hashTableKernel("", seed, base, int(scale(seg, 128*1024)), 2, 0.9, 2)
			}},
			Script{Name: "index_walk", Weight: 25, Tx: 6, Make: func(seed, base uint64) *Gen {
				return chaseKernel("", seed, base, int(scale(seg, 64*1024)), 2, 2)
			}},
			Script{Name: "part_scan", Weight: 15, Tx: 16, Think: 500, Make: func(seed, base uint64) *Gen {
				return loopScanKernel("", seed, base, scale(seg, 2*blocksPerMB), 4*blocksPerKB, 2)
			}},
		))
	}))
	// mix_batch: an analytics node — unpaced ETL streaming, sparse join
	// gathers, and matrix-factor updates contending for the cache.
	registerFamily(mixFamily("mix_batch", "mix analytics", func(seg int, seed, base uint64) *MixGen {
		return NewMix("", seed, base, 0, NewScripts(
			Script{Name: "etl_stream", Weight: 40, Tx: 32, Make: func(seed, base uint64) *Gen {
				return streamKernel("", seed, base, scale(seg, 16*blocksPerMB), 1, 6, 6, 2)
			}},
			Script{Name: "join_gather", Weight: 35, Tx: 16, Make: func(seed, base uint64) *Gen {
				return gatherKernel("", seed, base, 1*blocksPerMB, scale(seg, 8*blocksPerMB), 2, 2)
			}},
			Script{Name: "factor_mat", Weight: 25, Tx: 16, Make: func(seed, base uint64) *Gen {
				return matrixKernel("", seed, base, 1*blocksPerMB, int(scale(seg, 48*1024)), 2, 0.9, 2)
			}},
		))
	}))
}
