package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"mpppb/internal/journal"
	"mpppb/internal/obs"
	"mpppb/internal/parallel"
)

// DefaultPoll is the sleep between lease requests answered "no work yet".
const DefaultPoll = 250 * time.Millisecond

// maxConsecutiveHTTPErrors is how many back-to-back failed round trips a
// worker tolerates before concluding the coordinator is gone.
const maxConsecutiveHTTPErrors = 15

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// URL is the coordinator's base URL (the -listen address of the
	// coordinator process), e.g. http://host:8080.
	URL string
	// ID names this worker in leases and metrics; empty derives
	// hostname-pid.
	ID string
	// Fingerprint must match the coordinator's or every request is
	// refused with 409.
	Fingerprint journal.Fingerprint
	// Workers is how many cells to compute concurrently; <= 0 uses
	// parallel.Default().
	Workers int
	// Retries/Backoff/Timeout govern local compute attempts per lease,
	// with the same classification the single-process pool uses
	// (parallel.Transient marks retryable errors). A cell that exhausts
	// local retries is reported to the coordinator with its final
	// retryability, and the coordinator's own budget decides whether a
	// fresh worker gets it.
	Retries int
	Backoff time.Duration
	Timeout time.Duration
	// Status, when non-nil, mirrors this worker's cell activity into its
	// local /status manifest.
	Status *obs.RunStatus
	// Progress, when non-nil, is called after each cell this worker
	// resolves locally.
	Progress func(key string, err error)
	// Poll is the sleep between empty lease responses; 0 means
	// DefaultPoll.
	Poll time.Duration
	// Client is the HTTP client; nil uses a modest-timeout default.
	Client *http.Client
}

// Worker computes cells leased from a coordinator.
type Worker struct {
	cfg  WorkerConfig
	base string
}

// NewWorker validates the config and returns a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.URL == "" {
		return nil, errors.New("fleet: worker needs a coordinator URL")
	}
	base := strings.TrimRight(cfg.URL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if cfg.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{cfg: cfg, base: base}, nil
}

// ID returns the worker's identity as sent to the coordinator.
func (w *Worker) ID() string { return w.cfg.ID }

// Run leases cells from keys until the coordinator reports the grid
// drained, computing each with compute (which receives the key's index in
// keys). It then fetches every cell's terminal state and returns
// MapErr-shaped results: per-key raw JSON values — including cells other
// workers computed — per-key errors for permanently failed cells, and a
// run error for cancellation or a dead/conflicting coordinator.
func (w *Worker) Run(ctx context.Context, keys []string, compute func(ctx context.Context, i int) (any, error)) ([]json.RawMessage, []error, error) {
	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[k] = i
	}
	workers := w.cfg.Workers
	if workers <= 0 {
		workers = parallel.Default()
	}

	// Each loop independently leases, computes, reports, repeats. A fatal
	// error (conflict, coordinator unreachable) latches and stops every
	// loop.
	var fatalMu sync.Mutex
	var fatalErr error
	loopCtx, cancelLoops := context.WithCancel(ctx)
	defer cancelLoops()
	fatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancelLoops()
	}
	parallel.ForEach(workers, workers, func(int) error {
		w.leaseLoop(loopCtx, keys, index, compute, fatal)
		return nil
	})
	fatalMu.Lock()
	err := fatalErr
	fatalMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Drained: every cell is terminal on the coordinator. Fetch the full
	// grid — including cells computed elsewhere — so this worker can emit
	// the same tables a single-process run would. The coordinator lingers
	// after its campaign completes until live workers have made this
	// fetch (Board.SettleWorkers), so transient failures here are worth a
	// few retries before giving up.
	var resp cellsResponse
	var fetchErr error
	for attempt := 0; attempt < 5; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		fetchErr = post(w.cfg.Client, w.base, "/cells", cellsRequest{
			Worker: w.cfg.ID, Fingerprint: w.cfg.Fingerprint, Keys: keys,
		}, &resp)
		if fetchErr == nil {
			break
		}
		if errors.Is(fetchErr, errConflict) {
			return nil, nil, fetchErr
		}
		sleepCtx(ctx, w.cfg.Poll)
	}
	if fetchErr != nil {
		return nil, nil, fmt.Errorf("fleet: campaign drained but the final grid fetch failed: %w", fetchErr)
	}
	raws := make([]json.RawMessage, len(keys))
	errs := make([]error, len(keys))
	for _, c := range resp.Cells {
		i, ok := index[c.Key]
		if !ok {
			continue
		}
		switch c.Status {
		case "ok":
			raws[i] = c.Value
		case "failed":
			errs[i] = &CellError{Key: c.Key, Msg: c.Error}
		default:
			errs[i] = fmt.Errorf("fleet: cell %s not terminal after drain (status %s)", c.Key, c.Status)
		}
	}
	return raws, errs, nil
}

// leaseLoop is one concurrent lane: lease → compute → report, until the
// grid drains or the context dies.
func (w *Worker) leaseLoop(ctx context.Context, keys []string, index map[string]int, compute func(ctx context.Context, i int) (any, error), fatal func(error)) {
	httpErrs := 0
	for {
		if ctx.Err() != nil {
			return
		}
		var lease leaseResponse
		err := post(w.cfg.Client, w.base, "/lease", leaseRequest{
			Worker: w.cfg.ID, Fingerprint: w.cfg.Fingerprint, Keys: keys,
		}, &lease)
		if err != nil {
			if errors.Is(err, errConflict) {
				fatal(err)
				return
			}
			httpErrs++
			if httpErrs >= maxConsecutiveHTTPErrors {
				fatal(fmt.Errorf("fleet: coordinator unreachable after %d attempts: %w", httpErrs, err))
				return
			}
			sleepCtx(ctx, w.cfg.Poll)
			continue
		}
		httpErrs = 0
		if lease.Drained {
			return
		}
		if !lease.Granted {
			mWorkerPolls.Inc()
			sleepCtx(ctx, w.cfg.Poll)
			continue
		}
		mWorkerLeases.Inc()
		w.runLease(ctx, lease, index, compute, fatal)
	}
}

// runLease computes one leased cell under a heartbeat and reports the
// outcome.
func (w *Worker) runLease(ctx context.Context, lease leaseResponse, index map[string]int, compute func(ctx context.Context, i int) (any, error), fatal func(error)) {
	key := lease.Key
	i, ok := index[key]
	if !ok {
		// The coordinator never grants keys outside the request set; a
		// mismatch means crossed campaigns.
		fatal(fmt.Errorf("fleet: leased unknown cell %s", key))
		return
	}
	ttl := ttlFromMillis(lease.TTLMilli)
	w.cfg.Status.CellRunning(key)

	// Heartbeat: renew at a third of the TTL. A refused renewal means the
	// lease expired and was reassigned — abandon the attempt (lost lease)
	// without reporting, because another worker now owns the cell.
	computeCtx, cancelCompute := context.WithCancel(ctx)
	leaseLost := make(chan struct{})
	heartbeatDone := make(chan struct{})
	go func() {
		defer close(heartbeatDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-computeCtx.Done():
				return
			case <-t.C:
			}
			var renewed okResponse
			err := post(w.cfg.Client, w.base, "/renew", renewRequest{
				Worker: w.cfg.ID, Fingerprint: w.cfg.Fingerprint,
				Key: key, LeaseID: lease.LeaseID,
			}, &renewed)
			if err != nil {
				if errors.Is(err, errConflict) {
					fatal(err)
					return
				}
				// Transient renew failures ride on the TTL slack: the next
				// tick retries, and if the coordinator stays unreachable the
				// lease simply expires there.
				continue
			}
			mWorkerRenewals.Inc()
			if !renewed.OK {
				mWorkerLeaseLost.Inc()
				close(leaseLost)
				cancelCompute()
				return
			}
		}
	}()

	// Local compute reuses the single-process retry machinery — one item,
	// full Retries/Backoff/Timeout classification.
	vals, errs, runErr := parallel.MapErr(computeCtx, parallel.RunOpts{
		Workers: 1, Retries: w.cfg.Retries, Backoff: w.cfg.Backoff,
		Timeout: w.cfg.Timeout, KeepGoing: true,
	}, 1, func(actx context.Context, _ int) (any, error) {
		return compute(actx, i)
	})
	cancelCompute()
	<-heartbeatDone

	select {
	case <-leaseLost:
		return // reassigned; result abandoned
	default:
	}
	if ctx.Err() != nil {
		return // shutting down; lease expires at the coordinator
	}

	var cellErr error
	if runErr != nil {
		cellErr = runErr
	} else if errs[0] != nil {
		cellErr = errs[0]
	}
	if cellErr == nil {
		raw, err := json.Marshal(vals[0])
		if err != nil {
			cellErr = fmt.Errorf("marshal result: %w", err)
		} else {
			if err := w.report(ctx, "/complete", completeRequest{
				Worker: w.cfg.ID, Fingerprint: w.cfg.Fingerprint,
				Key: key, LeaseID: lease.LeaseID, Value: raw,
			}, fatal); err != nil {
				return
			}
			mWorkerCompleted.Inc()
			w.cfg.Status.CellDone(key, obs.CellOK, 0)
			if w.cfg.Progress != nil {
				w.cfg.Progress(key, nil)
			}
			return
		}
	}
	if err := w.report(ctx, "/fail", failRequest{
		Worker: w.cfg.ID, Fingerprint: w.cfg.Fingerprint,
		Key: key, LeaseID: lease.LeaseID,
		Error: cellErr.Error(), Retryable: parallel.Retryable(cellErr),
	}, fatal); err != nil {
		return
	}
	mWorkerFailed.Inc()
	w.cfg.Status.CellDone(key, obs.CellFailed, 0)
	if w.cfg.Progress != nil {
		w.cfg.Progress(key, cellErr)
	}
}

// report uploads a completion or failure, retrying transient HTTP errors
// within the lease's grace. Giving up is safe — the lease expires and the
// cell is reassigned — so only conflicts are fatal.
func (w *Worker) report(ctx context.Context, path string, req any, fatal func(error)) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp okResponse
		lastErr = post(w.cfg.Client, w.base, path, req, &resp)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, errConflict) {
			fatal(lastErr)
			return lastErr
		}
		sleepCtx(ctx, w.cfg.Poll)
	}
	return lastErr
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
