package mpppb

// Ablation benchmarks for the design choices DESIGN.md calls out beyond the
// paper's own figures: the perceptron training threshold θ, the sampler
// size, and bypass on/off. Each reports MPKI over a fixed mixed workload so
// the sensitivity of the design point is visible from `go test -bench`.

import (
	"fmt"
	"testing"

	"mpppb/internal/core"
	"mpppb/internal/sim"
	"mpppb/internal/workload"
)

// ablationMPKI measures average fast-sim MPKI over a small diverse workload
// sample for one MPPPB parameterization.
func ablationMPKI(b *testing.B, params core.Params) float64 {
	b.Helper()
	cfg := sim.SingleThreadConfig()
	cfg.Warmup = 150_000
	cfg.Measure = 500_000
	ids := []workload.SegmentID{
		{Bench: "libquantum_like", Seg: 0},
		{Bench: "gcc_like", Seg: 0},
		{Bench: "data_caching_like", Seg: 0},
	}
	var sum float64
	for _, id := range ids {
		gen := workload.NewGenerator(id, workload.CoreBase(0))
		res := sim.RunFastMPKI(cfg, gen, func(sets, ways int) cacheReplacementPolicy {
			return core.NewMPPPB(sets, ways, params)
		})
		sum += res.MPKI
	}
	return sum / float64(len(ids))
}

// BenchmarkAblationTheta sweeps the perceptron training threshold.
func BenchmarkAblationTheta(b *testing.B) {
	for _, theta := range []int{8, 40, 120} {
		b.Run(fmt.Sprintf("theta=%d", theta), func(b *testing.B) {
			params := core.SingleThreadParams()
			params.Theta = theta
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationMPKI(b, params), "mpki")
			}
		})
	}
}

// BenchmarkAblationSamplerSets sweeps the number of sampled sets around the
// paper's 64-per-core choice.
func BenchmarkAblationSamplerSets(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("sets=%d", n), func(b *testing.B) {
			params := core.SingleThreadParams()
			params.SamplerSets = n
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationMPKI(b, params), "mpki")
			}
		})
	}
}

// BenchmarkAblationBypass compares the full MPPPB against placement/
// promotion only (bypass disabled), isolating the bypass contribution.
func BenchmarkAblationBypass(b *testing.B) {
	for _, bypass := range []bool{true, false} {
		b.Run(fmt.Sprintf("bypass=%v", bypass), func(b *testing.B) {
			params := core.SingleThreadParams()
			params.BypassEnabled = bypass
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationMPKI(b, params), "mpki")
			}
		})
	}
}

// BenchmarkAblationDefaultPolicy compares the two default replacement
// policies of Section 3.7 under the same features and thresholds.
func BenchmarkAblationDefaultPolicy(b *testing.B) {
	for _, def := range []struct {
		name string
		d    core.DefaultPolicy
		pi   [3]int
	}{
		{"mdpp", core.DefaultMDPP, [3]int{15, 12, 9}},
		{"srrip", core.DefaultSRRIP, [3]int{3, 2, 1}},
	} {
		b.Run(def.name, func(b *testing.B) {
			params := core.SingleThreadParams()
			params.Default = def.d
			params.Pi = def.pi
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationMPKI(b, params), "mpki")
			}
		})
	}
}
