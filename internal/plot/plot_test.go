package plot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines("test", 20, 5, Series{Name: "a", Y: []float64{1, 2, 3, 4}})
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "4.000") || !strings.Contains(out, "1.000") {
		t.Fatalf("missing axis labels:\n%s", out)
	}
	// Ascending data: the first canvas row must contain the marker near
	// the right edge.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Fatalf("top row empty for ascending data:\n%s", out)
	}
	if strings.Index(top, "*") < len(top)/2 {
		t.Fatalf("max of ascending series not on the right:\n%s", out)
	}
}

func TestLinesMultipleSeriesDistinctMarkers(t *testing.T) {
	out := Lines("two", 24, 6,
		Series{Name: "up", Y: []float64{0, 1, 2}},
		Series{Name: "down", Y: []float64{2, 1, 0}},
	)
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second marker absent from canvas")
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("empty", 20, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestLinesConstantSeries(t *testing.T) {
	// Must not divide by zero on a flat line.
	out := Lines("flat", 20, 5, Series{Name: "c", Y: []float64{2, 2, 2}})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series missing markers:\n%s", out)
	}
}

func TestLinesWithExplicitX(t *testing.T) {
	out := Lines("xy", 20, 5, Series{Name: "p", Y: []float64{0, 1}, X: []float64{0.5, 0.9}})
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "0.9") {
		t.Fatalf("x-axis labels missing:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("bars", 10, []string{"aa", "b"}, []float64{1.0, 0.5})
	if !strings.Contains(out, "aa") || !strings.Contains(out, "█") {
		t.Fatalf("bar chart malformed:\n%s", out)
	}
	// Larger value gets a longer bar.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	Bars("x", 10, []string{"a"}, []float64{1, 2})
}

func TestSCurveSortsWithoutMutating(t *testing.T) {
	in := []float64{3, 1, 2}
	SCurve("s", 20, 5, Series{Name: "s", Y: in})
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("SCurve mutated the input")
	}
}
