package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// setFlag sets a registered flag for the test and restores it afterwards.
func setFlag(t *testing.T, name, value string) {
	t.Helper()
	old := flag.Lookup(name).Value.String()
	if err := flag.Set(name, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { flag.Set(name, old) })
}

// TestStartDisabled: with neither flag set, Start and its stop function
// are no-ops that create no files.
func TestStartDisabled(t *testing.T) {
	setFlag(t, "cpuprofile", "")
	setFlag(t, "memprofile", "")
	stop := Start()
	stop()
}

// TestStartWritesCPUProfile runs a real CPU profile session and checks a
// non-empty profile lands at the configured path after stop.
func TestStartWritesCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	setFlag(t, "cpuprofile", path)
	setFlag(t, "memprofile", "")

	stop := Start()
	// Burn a little CPU so the profile has something to sample; the file
	// is non-empty regardless (pprof writes a header).
	sink := 0
	for i := 0; i < 1<<20; i++ {
		sink += i * i
	}
	_ = sink
	stop()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("CPU profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
}

// TestStartWritesMemProfile checks the heap profile is written on stop.
func TestStartWritesMemProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	setFlag(t, "cpuprofile", "")
	setFlag(t, "memprofile", path)

	stop := Start()
	live := make([][]byte, 64)
	for i := range live {
		live[i] = make([]byte, 1<<12)
	}
	stop()
	_ = live

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

// TestStartBothProfiles exercises the combined path main() uses.
func TestStartBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cpu.pprof")
	mp := filepath.Join(dir, "mem.pprof")
	setFlag(t, "cpuprofile", cp)
	setFlag(t, "memprofile", mp)

	Start()()

	for _, p := range []string{cp, mp} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
