package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestPackedROCRoundTrip(t *testing.T) {
	samples := []ROCSample{
		{Confidence: -5, Dead: true},
		{Confidence: 0, Dead: false},
		{Confidence: 127, Dead: true},
		{Confidence: 3, Dead: false},
	}
	p := PackROC(samples)
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q PackedROC
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if got := q.Unpack(); !reflect.DeepEqual(got, samples) {
		t.Fatalf("round-trip %+v, want %+v", got, samples)
	}
}

func TestPackedROCEmpty(t *testing.T) {
	p := PackROC(nil)
	if got := p.Unpack(); len(got) != 0 {
		t.Fatalf("empty round-trip produced %d samples", len(got))
	}
}
