// Package plot renders small ASCII charts for the command-line tools: the
// S-curves of Figures 4 and 5, the ROC curves of Figures 1 and 8, and the
// per-benchmark bars of Figures 6, 7, 9 and 10. Pure text, no
// dependencies; the TSV output remains the machine-readable artifact.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	Y    []float64
	// X is optional; when nil, points are spaced evenly by index.
	X []float64
}

// markers assigns one rune per series, in order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders one or more series on a shared canvas of the given size.
// Each series draws with its own marker; a legend follows the canvas.
func Lines(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8.3f ┤%s\n", maxY, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "         │%s\n", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.3f ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "         └%s\n", strings.Repeat("─", width))
	fmt.Fprintf(&b, "          %-8.3g%s%8.3g\n", minX, strings.Repeat(" ", max(0, width-16)), maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bars renders a horizontal bar chart with one row per label. Values may
// be negative; bars grow from the value closest to zero in range.
func Bars(title string, width int, labels []string, values []float64) string {
	if len(labels) != len(values) {
		panic("plot: labels/values length mismatch")
	}
	if width < 10 {
		width = 10
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	minV, maxV := 0.0, 0.0
	for _, v := range values {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, l := range labels {
		n := int((values[i] - minV) / span * float64(width))
		fmt.Fprintf(&b, "  %-*s │%-*s %.4f\n", maxLabel, l, width, strings.Repeat("█", n), values[i])
	}
	return b.String()
}

// SCurve is a convenience wrapper for the sorted-by-value presentation of
// Figures 4 and 5: it sorts each series ascending before plotting.
func SCurve(title string, width, height int, series ...Series) string {
	sorted := make([]Series, len(series))
	for i, s := range series {
		ys := append([]float64(nil), s.Y...)
		insertionSort(ys)
		sorted[i] = Series{Name: s.Name, Y: ys}
	}
	return Lines(title, width, height, sorted...)
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
