package sim_test

// Tests of the -check verification layer at the simulation level: checked
// runs must complete real workload segments with zero divergences, produce
// byte-identical results to unchecked runs (the layer observes, never
// steers), and preserve the -j determinism guarantee.

import (
	"fmt"
	"testing"

	"mpppb/internal/sim"
	"mpppb/internal/workload"
)

// checkBudgets keeps checked runs fast while still cycling the LLC.
const (
	checkWarmup  = 20_000
	checkMeasure = 60_000
)

// TestCheckedRunClean runs every oracled LLC policy through a checked
// single-thread simulation of a real workload segment. Any divergence
// panics inside RunSingle and fails the test.
func TestCheckedRunClean(t *testing.T) {
	for _, name := range []string{"lru", "plru", "srrip", "mdpp", "mpppb", "mpppb-srrip"} {
		t.Run(name, func(t *testing.T) {
			cfg := sim.SingleThreadConfig()
			cfg.Warmup, cfg.Measure = checkWarmup, checkMeasure
			cfg.Check = true
			pf, err := sim.Policy(name)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewGenerator(workload.Segments()[0], 0)
			res := sim.RunSingle(cfg, gen, pf)
			if res.Instructions == 0 {
				t.Fatal("checked run measured no instructions")
			}
		})
	}
}

// TestCheckedRunCleanMulti runs a checked 4-core mix with the shared-LLC
// MPPPB-over-SRRIP configuration.
func TestCheckedRunCleanMulti(t *testing.T) {
	cfg := sim.MultiCoreConfig()
	cfg.Warmup, cfg.Measure = checkWarmup, checkMeasure
	cfg.Check = true
	pf, err := sim.Policy("mpppb-srrip")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mixes(1, workload.DefaultMixSeed)[0]
	res := sim.RunMulti(cfg, mix, pf)
	if res.LLCAccesses == 0 {
		t.Fatal("checked multi-core run made no LLC accesses")
	}
}

// TestCheckedMatchesUnchecked verifies the observation layer never steers
// the simulation: deterministic results of checked and unchecked runs are
// identical for both the timed and fast drivers.
func TestCheckedMatchesUnchecked(t *testing.T) {
	for _, name := range []string{"lru", "mpppb"} {
		t.Run(name, func(t *testing.T) {
			pf, err := sim.Policy(name)
			if err != nil {
				t.Fatal(err)
			}
			seg := workload.Segments()[1]
			run := func(check bool) (sim.Result, sim.Result) {
				cfg := sim.SingleThreadConfig()
				cfg.Warmup, cfg.Measure = checkWarmup, checkMeasure
				cfg.Check = check
				timed := sim.RunSingle(cfg, workload.NewGenerator(seg, 0), pf)
				fast := sim.RunFastMPKI(cfg, workload.NewGenerator(seg, 0), pf)
				return timed.Deterministic(), fast.Deterministic()
			}
			timedOff, fastOff := run(false)
			timedOn, fastOn := run(true)
			if timedOn != timedOff {
				t.Errorf("RunSingle: checked %+v != unchecked %+v", timedOn, timedOff)
			}
			if fastOn != fastOff {
				t.Errorf("RunFastMPKI: checked %+v != unchecked %+v", fastOn, fastOff)
			}
		})
	}
}

// TestCheckedDeterministicAcrossWorkers extends the -j determinism
// guarantee to checked mode: runs fanned across 8 workers produce the same
// results as the serial path with checking enabled.
func TestCheckedDeterministicAcrossWorkers(t *testing.T) {
	cfg := sim.SingleThreadConfig()
	cfg.Warmup, cfg.Measure = checkWarmup, checkMeasure
	cfg.Check = true
	pf, err := sim.Policy("mpppb")
	if err != nil {
		t.Fatal(err)
	}
	segs := workload.Segments()[:3]

	render := func() string {
		out := ""
		for _, id := range segs {
			r := sim.RunSingle(cfg, workload.NewGenerator(id, 0), pf).Deterministic()
			out += fmt.Sprintf("%s %d %d %d %d\n", r.Segment, r.Instructions, r.Cycles, r.LLCMisses, r.Bypasses)
		}
		return out
	}
	var serial, par string
	withWorkers(1, func() { serial = render() })
	withWorkers(8, func() { par = render() })
	if serial != par {
		t.Fatalf("checked results differ between -j1 and -j8:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}
